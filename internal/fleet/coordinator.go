package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"ghostspec/internal/coverage"
	"ghostspec/internal/randtest"
)

// CoordinatorConfig parameterises a fleet coordinator.
type CoordinatorConfig struct {
	// Shards is the number of seed streams work is sharded into;
	// workers lease one at a time, a round per lease. More shards than
	// workers keeps everyone busy through joins and deaths. Default 4.
	Shards int
	// BaseSeed roots every shard's seed stream (shard s, round r runs
	// randtest.WorkerSeed-derived seeds — fully re-derivable from this
	// one number). Default 1.
	BaseSeed int64
	// Campaign shape every fleet member runs with — it must be
	// fleet-wide uniform or traces would not replay across workers.
	StepsPerRun int // default 300
	NrCPUs      int // default 4
	SchedFuzz   bool
	BigMemory   bool
	Bugs        []string
	// RoundExecs bounds one engine round on a shard (default 512):
	// the granularity at which shards can migrate between workers.
	RoundExecs int64
	// Lease is the heartbeat window: a worker silent for longer is
	// dead and its shard frees for reassignment. Default 10s.
	Lease time.Duration
	// ReportEvery is the cadence workers are told to report at
	// (default 500ms — comfortably inside the lease, and the batching
	// interval that keeps coordination off the per-exec path).
	ReportEvery time.Duration
	// CorpusBatch caps corpus entries streamed per report response
	// (default 64), bounding response sizes on fresh joins.
	CorpusBatch int
	// Logf, when set, receives coordinator progress lines.
	Logf func(format string, args ...any)
}

func (c *CoordinatorConfig) fill() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.StepsPerRun <= 0 {
		c.StepsPerRun = 300
	}
	if c.NrCPUs <= 0 {
		c.NrCPUs = 4
	}
	if c.RoundExecs <= 0 {
		c.RoundExecs = 512
	}
	if c.Lease <= 0 {
		c.Lease = 10 * time.Second
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 500 * time.Millisecond
	}
	if c.CorpusBatch <= 0 {
		c.CorpusBatch = 64
	}
}

// Coordinator is the fleet's control plane: registration, shard
// leases, coverage merge, corpus fan-out, and finding dedup, all under
// one mutex — every operation is map/slice bookkeeping on batched
// payloads, far off any worker's per-exec path.
type Coordinator struct {
	cfg   CoordinatorConfig
	start time.Time

	mu         sync.Mutex
	nextWorker int
	workers    map[string]*workerRec
	shards     []*shardRec
	// corpus is the append-only deduplicated global log workers page
	// through with their cursors; corpusSeen the canonical-hash set.
	corpus     []corpusRec
	corpusSeen map[uint64]bool
	// findings is keyed by canonical minimized-trace hash.
	findings     map[uint64]*findingRec
	findingOrder []uint64

	execs             int64
	findingsReported  int64
	findingsDuplicate int64
	corpusSynced      int64
	corpusFanout      int64
	reassigns         int64
}

type workerRec struct {
	id, name    string
	threads     int
	shard       int // -1 when unassigned
	execs       int64
	execsPerSec float64
	lastReport  time.Time
	cov         coverage.Delta
	dead        bool
	err         string
}

type shardRec struct {
	seed       int64
	worker     string // "" when free
	lastWorker string
	execs      int64
	rounds     int64
	reassigns  int64
	// expired marks a shard freed by lease expiry: its next
	// assignment to a different worker counts as a reassignment (the
	// dead-worker recovery the smoke test asserts).
	expired bool
}

type corpusRec struct {
	blob   []byte
	origin string
}

type findingRec struct {
	f       Finding
	count   int
	workers map[string]bool
}

// NewCoordinator builds a coordinator with its shard table.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg.fill()
	c := &Coordinator{
		cfg:        cfg,
		start:      time.Now(),
		workers:    make(map[string]*workerRec),
		corpusSeen: make(map[uint64]bool),
		findings:   make(map[uint64]*findingRec),
	}
	for s := 0; s < cfg.Shards; s++ {
		c.shards = append(c.shards, &shardRec{seed: randtest.WorkerSeed(cfg.BaseSeed, s)})
	}
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Mux returns the coordinator's HTTP handlers, mountable next to the
// usual introspection endpoints.
func (c *Coordinator) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/v1/register", c.handleRegister)
	mux.HandleFunc("/fleet/v1/report", c.handleReport)
	mux.HandleFunc("/fleet/v1/status", c.handleStatus)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, RegisterResponse{Error: err.Error()})
		return
	}
	resp, err := c.Register(req)
	if err != nil {
		writeJSON(w, http.StatusConflict, RegisterResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ReportResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, c.Report(req))
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// Register admits a worker after the wire-version handshake.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.WireVersion != WireVersion {
		return RegisterResponse{}, fmt.Errorf(
			"%w: worker %q speaks wire version %d, coordinator %d — refusing (mixed-commit fleet)",
			ErrWireVersion, req.Name, req.WireVersion, WireVersion)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(time.Now())
	c.nextWorker++
	wr := &workerRec{
		id:         fmt.Sprintf("w%d", c.nextWorker),
		name:       req.Name,
		threads:    req.Threads,
		shard:      -1,
		lastReport: time.Now(),
	}
	c.workers[wr.id] = wr
	c.setWorkersLiveLocked()
	c.logf("fleet: worker %s (%q, %d threads) registered", wr.id, wr.name, wr.threads)
	return RegisterResponse{
		WorkerID: wr.id,
		LeaseMS:  c.cfg.Lease.Milliseconds(),
		ReportMS: c.cfg.ReportEvery.Milliseconds(),
	}, nil
}

// Report processes one batched worker report: heartbeat, exec/coverage
// accounting, corpus absorb + fan-out, finding dedup, and shard
// (re)assignment at round boundaries.
func (c *Coordinator) Report(req ReportRequest) ReportResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)

	wr, ok := c.workers[req.WorkerID]
	if !ok || wr.dead {
		// Unknown or expired identity: the worker restarts its
		// session. Its shard (if any) was already freed by the sweep.
		return ReportResponse{Reregister: true}
	}
	wr.lastReport = now
	wr.execsPerSec = req.ExecsPerSec
	if req.Error != "" {
		wr.err = req.Error
		c.logf("fleet: worker %s reports fatal error: %s", wr.id, req.Error)
	}

	// Exec accounting: cumulative worker count, diffed onto the shard
	// it is currently running and the fleet total.
	if d := req.Execs - wr.execs; d > 0 {
		wr.execs = req.Execs
		c.execs += d
		telExecs.Add(uint64(d))
		if wr.shard >= 0 {
			c.shards[wr.shard].execs += d
		}
	}
	if req.Coverage.Keys() > 0 {
		wr.cov = req.Coverage
	}

	for _, blob := range req.Corpus {
		c.absorbCorpusLocked(wr.id, blob)
	}
	for _, blob := range req.Findings {
		c.absorbFindingLocked(wr.id, blob)
	}

	resp := ReportResponse{OK: true}
	resp.Corpus, resp.CorpusCursor = c.corpusSliceLocked(wr.id, req.CorpusCursor)

	if req.Leaving {
		c.releaseShardLocked(wr, false)
		wr.dead = true
		c.setWorkersLiveLocked()
		c.logf("fleet: worker %s left cleanly after %d execs", wr.id, wr.execs)
		return resp
	}
	if req.NeedShard {
		c.releaseShardLocked(wr, false)
		if a := c.assignShardLocked(wr); a != nil {
			resp.Assignment = a
		} else {
			resp.RetryMS = c.cfg.ReportEvery.Milliseconds() * 4
		}
	}
	return resp
}

// sweepLocked expires leases: workers silent past the lease window are
// declared dead and their shards freed for reassignment.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, wr := range c.workers {
		if !wr.dead && now.Sub(wr.lastReport) > c.cfg.Lease {
			c.logf("fleet: worker %s lease expired (silent %v), freeing shard %d",
				wr.id, now.Sub(wr.lastReport).Round(time.Millisecond), wr.shard)
			c.releaseShardLocked(wr, true)
			wr.dead = true
		}
	}
	c.setWorkersLiveLocked()
}

func (c *Coordinator) setWorkersLiveLocked() {
	live := 0
	for _, wr := range c.workers {
		if !wr.dead {
			live++
		}
	}
	telWorkersLive.Set(int64(live))
}

// releaseShardLocked frees the worker's shard; expired marks a
// lease-death release, which arms the reassignment counter.
func (c *Coordinator) releaseShardLocked(wr *workerRec, expired bool) {
	if wr.shard < 0 {
		return
	}
	sh := c.shards[wr.shard]
	sh.lastWorker = wr.id
	sh.worker = ""
	sh.expired = expired
	if !expired {
		sh.rounds++
	}
	wr.shard = -1
}

// assignShardLocked leases the least-executed free shard — starved
// shards (a dead worker's included) migrate to whoever asks next.
func (c *Coordinator) assignShardLocked(wr *workerRec) *Assignment {
	best := -1
	for i, sh := range c.shards {
		if sh.worker != "" {
			continue
		}
		if best < 0 || sh.execs < c.shards[best].execs {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	sh := c.shards[best]
	if sh.expired && sh.lastWorker != wr.id {
		sh.reassigns++
		c.reassigns++
		telReassigns.Inc()
		c.logf("fleet: shard %d reassigned %s -> %s", best, sh.lastWorker, wr.id)
	}
	sh.expired = false
	sh.worker = wr.id
	wr.shard = best
	return &Assignment{
		Shard:       best,
		Seed:        randtest.WorkerSeed(sh.seed, int(sh.rounds)),
		StepsPerRun: c.cfg.StepsPerRun,
		NrCPUs:      c.cfg.NrCPUs,
		SchedFuzz:   c.cfg.SchedFuzz,
		BigMemory:   c.cfg.BigMemory,
		Bugs:        c.cfg.Bugs,
		RoundExecs:  c.cfg.RoundExecs,
	}
}

// absorbCorpusLocked admits one corpus blob into the global log,
// deduplicated by canonical trace hash.
func (c *Coordinator) absorbCorpusLocked(origin string, blob []byte) {
	entry, err := DecodeCorpusEntry(blob)
	if err != nil {
		c.logf("fleet: dropping undecodable corpus entry from %s: %v", origin, err)
		return
	}
	h := TraceHash(entry.Trace)
	if c.corpusSeen[h] {
		telCorpusDup.Inc()
		return
	}
	c.corpusSeen[h] = true
	c.corpus = append(c.corpus, corpusRec{blob: blob, origin: origin})
	c.corpusSynced++
	telCorpusSynced.Inc()
}

// corpusSliceLocked pages the global log for a worker: entries past
// its cursor, its own excluded, capped at CorpusBatch.
func (c *Coordinator) corpusSliceLocked(worker string, cursor int) ([][]byte, int) {
	if cursor < 0 {
		cursor = 0
	}
	var out [][]byte
	for cursor < len(c.corpus) && len(out) < c.cfg.CorpusBatch {
		rec := c.corpus[cursor]
		cursor++
		if rec.origin == worker {
			continue
		}
		out = append(out, rec.blob)
	}
	c.corpusFanout += int64(len(out))
	telCorpusFanout.Add(uint64(len(out)))
	return out, cursor
}

// absorbFindingLocked dedups one reported finding by its canonical
// minimized-trace hash.
func (c *Coordinator) absorbFindingLocked(worker string, blob []byte) {
	f, err := DecodeFinding(blob)
	if err != nil {
		c.logf("fleet: dropping undecodable finding from %s: %v", worker, err)
		return
	}
	c.findingsReported++
	telFindings.Inc()
	key := f.DedupKey()
	if rec, ok := c.findings[key]; ok {
		rec.count++
		rec.workers[worker] = true
		c.findingsDuplicate++
		telFindingsDup.Inc()
		return
	}
	c.findings[key] = &findingRec{f: f, count: 1, workers: map[string]bool{worker: true}}
	c.findingOrder = append(c.findingOrder, key)
	telFindingsUnique.Set(int64(len(c.findings)))
	alarm := ""
	if len(f.Failures) > 0 {
		alarm = f.Failures[0]
	} else if f.SchedErr != "" {
		alarm = "sched: " + f.SchedErr
	}
	c.logf("fleet: NEW finding %016x from %s (%d min ops): %s", key, worker, f.Min.Len(), alarm)
}

// Status snapshots the fleet (the /fleet/v1/status payload).
func (c *Coordinator) Status() StatusResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)

	resp := StatusResponse{
		WireVersion:       WireVersion,
		Elapsed:           now.Sub(c.start),
		Execs:             c.execs,
		CorpusEntries:     len(c.corpus),
		CorpusSynced:      c.corpusSynced,
		CorpusFanout:      c.corpusFanout,
		FindingsReported:  c.findingsReported,
		FindingsDuplicate: c.findingsDuplicate,
		Reassigns:         c.reassigns,
	}

	merged := coverage.NewAggregator()
	var ids []string
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		wr := c.workers[id]
		ws := WorkerStatus{
			ID: wr.id, Name: wr.name, Shard: wr.shard,
			Live: !wr.dead, Execs: wr.execs, ExecsPerSec: wr.execsPerSec,
			LastReport: wr.lastReport, Coverage: wr.cov,
			CoverageKeys: wr.cov.Keys(), Error: wr.err,
		}
		resp.Workers = append(resp.Workers, ws)
		if !wr.dead {
			resp.WorkersLive++
			resp.ExecsPerSec += wr.execsPerSec
		}
		merged.AbsorbDelta(wr.cov)
	}
	resp.Merged = merged.Export()
	resp.MergedKeys = resp.Merged.Keys()
	mr := merged.Report()
	resp.MergedImplCovered, resp.MergedImplTotal = mr.ImplCovered, mr.ImplTotal

	for i, sh := range c.shards {
		resp.Shards = append(resp.Shards, ShardStatus{
			Shard: i, Seed: sh.seed, Worker: sh.worker,
			Execs: sh.execs, Rounds: sh.rounds, Reassigns: sh.reassigns,
		})
	}
	for _, key := range c.findingOrder {
		rec := c.findings[key]
		var workers []string
		for w := range rec.workers {
			workers = append(workers, w)
		}
		sort.Strings(workers)
		fs := FindingStatus{
			Hash:    fmt.Sprintf("%016x", key),
			Count:   rec.count,
			Workers: workers,
			MinOps:  rec.f.Min.Len(),
			Sched:   rec.f.Sched != nil,
		}
		if len(rec.f.Failures) > 0 {
			fs.Alarm = rec.f.Failures[0]
		} else if rec.f.SchedErr != "" {
			fs.Alarm = "sched: " + rec.f.SchedErr
		}
		resp.Findings = append(resp.Findings, fs)
	}
	return resp
}
