// Package fleet distributes the campaign engine across processes and
// machines: a coordinator (an HTTP/JSON service) shards seed streams
// across registered workers, merges their coverage, synchronises novel
// corpus entries between them, and deduplicates findings by
// minimized-trace hash; workers wrap a campaign.Engine and stream
// batched exec/coverage/corpus/finding deltas back under heartbeat
// leases. ROADMAP item 1's "millions of executions per hour" story:
// the per-exec hot path never touches the network — everything crosses
// it in periodic batches.
//
// This file is the deterministic wire format for the payloads that
// must round-trip byte-identically: corpus entries (a trace plus its
// novelty score) and findings (trace, minimized trace, alarms, and the
// schedule pair for schedule-fuzz findings). Traces themselves ride
// the versioned randtest codec; the envelopes here add their own magic
// and version and reject skew the same way.
package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"ghostspec/internal/arch"
	"ghostspec/internal/campaign"
	"ghostspec/internal/hyp"
	"ghostspec/internal/randtest"
	"ghostspec/internal/sched"
)

// WireVersion is the fleet envelope version. It covers the corpus and
// finding encodings and the HTTP API shapes; a coordinator refuses
// registration from a worker speaking a different version.
const WireVersion = 1

var (
	corpusMagic  = [4]byte{'g', 'h', 'c', 's'}
	findingMagic = [4]byte{'g', 'h', 'f', 'd'}

	// ErrWireVersion reports envelope version skew (the trace-level
	// twin is randtest.ErrWireVersion).
	ErrWireVersion = errors.New("fleet: wire version mismatch")
)

// CorpusEntry is one shareable seed: a recorded trace and the novelty
// score it earned when it entered its worker's corpus. End-state
// snapshots deliberately do not travel — they are process-local memory
// images; a peer replays the trace once and captures its own.
type CorpusEntry struct {
	Score float64
	Trace *randtest.Trace
}

// Encode renders the entry in wire form.
func (c CorpusEntry) Encode() []byte {
	buf := make([]byte, 0, 32+c.Trace.Len()*24)
	buf = append(buf, corpusMagic[:]...)
	buf = append(buf, WireVersion)
	buf = binary.AppendUvarint(buf, math.Float64bits(c.Score))
	return appendBlob(buf, randtest.EncodeTrace(c.Trace))
}

// DecodeCorpusEntry parses a wire corpus entry.
func DecodeCorpusEntry(data []byte) (CorpusEntry, error) {
	r := reader{data: data}
	if err := r.header(corpusMagic, "corpus entry"); err != nil {
		return CorpusEntry{}, err
	}
	var c CorpusEntry
	c.Score = math.Float64frombits(r.uvarint())
	tr, err := decodeTraceBlob(&r)
	if err != nil {
		return CorpusEntry{}, err
	}
	c.Trace = tr
	if err := r.finish(); err != nil {
		return CorpusEntry{}, err
	}
	return c, nil
}

// Finding is the wire form of a campaign finding: everything a
// coordinator needs to deduplicate, rank, and print a reproduction
// recipe, without the process-local parts (flight-recorder dumps stay
// with the worker's logs; the alarm strings carry their headline).
type Finding struct {
	Worker        int // worker-local shard index of the discovery
	Exec          int64
	Seed          int64
	FromCorpus    bool
	Reproducible  bool
	ShrinkReplays int
	Failures      []string // alarm strings of the original run
	MinFailures   []string // alarm strings of the minimized replay
	Trace         *randtest.Trace
	Min           *randtest.Trace
	// Schedule-fuzz findings carry the recorded and minimized
	// schedules plus the seed that derives them; SchedErr is set when
	// the finding is a scheduler-level error rather than an alarm.
	Sched     *sched.Schedule
	MinSched  *sched.Schedule
	SchedSeed int64
	SchedErr  string
}

// FromFinding projects a campaign finding onto the wire form.
func FromFinding(f campaign.Finding) Finding {
	wf := Finding{
		Worker:        f.Worker,
		Exec:          f.Exec,
		Seed:          f.Seed,
		FromCorpus:    f.FromCorpus,
		Reproducible:  f.Reproducible,
		ShrinkReplays: f.ShrinkReplays,
		Trace:         f.Trace,
		Min:           f.Min,
		Sched:         f.Sched,
		MinSched:      f.MinSched,
		SchedSeed:     f.SchedSeed,
		SchedErr:      f.SchedErr,
	}
	for _, a := range f.Failures {
		wf.Failures = append(wf.Failures, a.String())
	}
	for _, a := range f.MinFailures {
		wf.MinFailures = append(wf.MinFailures, a.String())
	}
	return wf
}

// Encode renders the finding in wire form.
func (f Finding) Encode() []byte {
	buf := make([]byte, 0, 64+f.Trace.Len()*24+f.Min.Len()*24)
	buf = append(buf, findingMagic[:]...)
	buf = append(buf, WireVersion)
	buf = binary.AppendVarint(buf, int64(f.Worker))
	buf = binary.AppendVarint(buf, f.Exec)
	buf = binary.AppendVarint(buf, f.Seed)
	buf = appendBool(buf, f.FromCorpus)
	buf = appendBool(buf, f.Reproducible)
	buf = binary.AppendVarint(buf, int64(f.ShrinkReplays))
	buf = appendStrings(buf, f.Failures)
	buf = appendStrings(buf, f.MinFailures)
	buf = appendBlob(buf, randtest.EncodeTrace(f.Trace))
	buf = appendBlob(buf, randtest.EncodeTrace(f.Min))
	buf = appendSchedule(buf, f.Sched)
	buf = appendSchedule(buf, f.MinSched)
	buf = binary.AppendVarint(buf, f.SchedSeed)
	buf = appendString(buf, f.SchedErr)
	return buf
}

// DecodeFinding parses a wire finding.
func DecodeFinding(data []byte) (Finding, error) {
	r := reader{data: data}
	if err := r.header(findingMagic, "finding"); err != nil {
		return Finding{}, err
	}
	var f Finding
	f.Worker = int(r.varint())
	f.Exec = r.varint()
	f.Seed = r.varint()
	f.FromCorpus = r.bool()
	f.Reproducible = r.bool()
	f.ShrinkReplays = int(r.varint())
	f.Failures = r.strings()
	f.MinFailures = r.strings()
	var err error
	if f.Trace, err = decodeTraceBlob(&r); err != nil {
		return Finding{}, err
	}
	if f.Min, err = decodeTraceBlob(&r); err != nil {
		return Finding{}, err
	}
	f.Sched = r.schedule()
	f.MinSched = r.schedule()
	f.SchedSeed = r.varint()
	f.SchedErr = r.string()
	if err := r.finish(); err != nil {
		return Finding{}, err
	}
	return f, nil
}

// DedupKey is the fleet-wide identity of a finding: the canonical hash
// of its minimized trace (the full trace when minimization did not
// reproduce). Two workers that shrink the same bug to the same minimal
// op sequence — whatever concrete frames their allocations landed on —
// collapse to one entry.
func (f Finding) DedupKey() uint64 {
	tr := f.Min
	if tr.Len() == 0 {
		tr = f.Trace
	}
	return TraceHash(tr)
}

// TraceHash is a canonical content hash of a trace: FNV-1a over the
// op stream with frame numbers, VM handles, and CPU indices renumbered
// in order of first appearance. Recorded PFNs, handles, and CPU
// placements are concrete values from the discovering run — two
// reproductions of the same bug typically differ only in where their
// allocations landed and which CPUs the generator happened to pick —
// and this normalization makes their hashes collide on purpose while
// preserving the *relative* structure (same-CPU vs cross-CPU op pairs,
// same-frame vs different-frame accesses stay distinct).
func TraceHash(tr *randtest.Trace) uint64 {
	h := fnv.New64a()
	var scratch [binary.MaxVarintLen64]byte
	wr := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		h.Write(scratch[:n])
	}
	pfns := map[arch.PFN]uint64{}
	handles := map[hyp.Handle]uint64{}
	xp := func(p arch.PFN) uint64 {
		if p == 0 {
			return 0 // "no frame" stays distinguished from any real one
		}
		id, ok := pfns[p]
		if !ok {
			id = uint64(len(pfns)) + 1
			pfns[p] = id
		}
		return id
	}
	xh := func(hd hyp.Handle) uint64 {
		if hd == 0 {
			return 0
		}
		id, ok := handles[hd]
		if !ok {
			id = uint64(len(handles)) + 1
			handles[hd] = id
		}
		return id
	}
	cpus := map[int]uint64{}
	xc := func(c int) uint64 {
		id, ok := cpus[c]
		if !ok {
			id = uint64(len(cpus)) + 1
			cpus[c] = id
		}
		return id
	}
	if tr == nil {
		return h.Sum64()
	}
	for _, op := range tr.Ops {
		wr(uint64(op.Kind))
		wr(xc(op.CPU))
		wr(xp(op.PFN))
		wr(op.Nr)
		wr(xh(op.H))
		wr(uint64(op.VCPU))
		wr(op.GFN)
		wr(op.Off)
		wr(boolBit(op.Write))
		wr(uint64(op.HC))
		for _, a := range op.Args {
			wr(a)
		}
		wr(uint64(op.Guest.Kind))
		wr(uint64(op.Guest.IPA))
		wr(boolBit(op.Guest.Write))
		wr(op.Guest.Value)
		wr(uint64(len(op.Prog)))
		for _, in := range op.Prog {
			wr(uint64(in.Op))
			wr(uint64(in.Dst))
			wr(uint64(in.Src))
			wr(in.Imm)
		}
	}
	return h.Sum64()
}

func boolBit(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// --- envelope primitives --------------------------------------------

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendBlob(buf, blob []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(blob)))
	return append(buf, blob...)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendStrings(buf []byte, ss []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		buf = appendString(buf, s)
	}
	return buf
}

// appendSchedule writes a presence byte then the steps, so a nil
// schedule (a serial finding) round-trips as nil, not as empty.
func appendSchedule(buf []byte, s *sched.Schedule) []byte {
	if s == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(len(s.Steps)))
	for _, st := range s.Steps {
		buf = binary.AppendVarint(buf, int64(st.VCPU))
		buf = binary.AppendUvarint(buf, st.Point)
	}
	return buf
}

func decodeTraceBlob(r *reader) (*randtest.Trace, error) {
	blob := r.blob()
	if r.err != nil {
		return nil, r.err
	}
	tr, err := randtest.DecodeTrace(blob)
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// reader is the latching-error cursor for fleet envelopes.
type reader struct {
	data []byte
	pos  int
	err  error
}

var errTruncated = errors.New("fleet: truncated wire blob")

func (r *reader) fail() {
	if r.err == nil {
		r.err = errTruncated
	}
}

// header checks magic and version, returning a decode-stopping error
// on either mismatch.
func (r *reader) header(magic [4]byte, what string) error {
	var got [4]byte
	for i := range got {
		got[i] = r.byte()
	}
	if r.err != nil {
		return r.err
	}
	if got != magic {
		return fmt.Errorf("fleet: not a %s wire blob (magic %q)", what, got)
	}
	ver := r.byte()
	if r.err != nil {
		return r.err
	}
	if ver != WireVersion {
		return fmt.Errorf("%w: %s version %d, this binary speaks %d",
			ErrWireVersion, what, ver, WireVersion)
	}
	return nil
}

// finish rejects trailing bytes.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("fleet: %d trailing bytes", len(r.data)-r.pos)
	}
	return nil
}

func (r *reader) byte() byte {
	if r.err != nil || r.pos >= len(r.data) {
		r.fail()
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *reader) bool() bool { return r.byte() != 0 }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) blob() []byte {
	n := r.uvarint()
	if r.err != nil || r.pos+int(n) > len(r.data) {
		r.fail()
		return nil
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

func (r *reader) string() string { return string(r.blob()) }

func (r *reader) strings() []string {
	n := r.uvarint()
	var out []string
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, r.string())
	}
	return out
}

func (r *reader) schedule() *sched.Schedule {
	if r.byte() == 0 || r.err != nil {
		return nil
	}
	n := r.uvarint()
	s := &sched.Schedule{}
	for i := uint64(0); i < n && r.err == nil; i++ {
		var st sched.Step
		st.VCPU = int(r.varint())
		st.Point = r.uvarint()
		s.Steps = append(s.Steps, st)
	}
	return s
}
