package fleet

import (
	"time"

	"ghostspec/internal/coverage"
)

// The coordinator's HTTP/JSON API, rooted at /fleet/v1/. Corpus
// entries and findings travel as their binary wire encodings inside
// JSON byte-slice fields (base64 on the wire), so the deterministic
// codec — not JSON struct evolution — defines their identity.
//
//	POST /fleet/v1/register  RegisterRequest  -> RegisterResponse
//	POST /fleet/v1/report    ReportRequest    -> ReportResponse
//	GET  /fleet/v1/status                     -> StatusResponse

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Name string `json:"name"`
	// WireVersion is the worker's fleet.WireVersion; the coordinator
	// rejects a mismatch outright rather than letting a skewed binary
	// exchange undecodable corpus blobs.
	WireVersion int `json:"wire_version"`
	// Threads is the worker's local campaign shard count (Config.
	// Workers), reported for the status page.
	Threads int `json:"threads"`
}

// RegisterResponse hands the worker its identity and the fleet-wide
// campaign shape. The worker then asks for shards via reports.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseMS is the heartbeat lease: a worker silent for longer is
	// declared dead and its shard reassigned.
	LeaseMS int64 `json:"lease_ms"`
	// ReportMS is the cadence the coordinator wants reports at
	// (comfortably inside the lease).
	ReportMS int64  `json:"report_ms"`
	Error    string `json:"error,omitempty"`
}

// Assignment is one shard lease: a seed stream plus the campaign
// parameters every fleet member must agree on for traces to replay.
type Assignment struct {
	Shard       int      `json:"shard"`
	Seed        int64    `json:"seed"`
	StepsPerRun int      `json:"steps_per_run"`
	NrCPUs      int      `json:"nr_cpus"`
	SchedFuzz   bool     `json:"sched_fuzz"`
	BigMemory   bool     `json:"big_memory"`
	Bugs        []string `json:"bugs,omitempty"`
	// RoundExecs bounds one engine round on this shard; the worker
	// reports back at the boundary so starved shards can migrate.
	RoundExecs int64 `json:"round_execs"`
}

// ReportRequest is the worker's batched heartbeat: everything that
// accumulated since the last accepted report, in one POST.
type ReportRequest struct {
	WorkerID string `json:"worker_id"`
	// Execs and ExecsPerSec are cumulative across the worker's rounds.
	Execs       int64   `json:"execs"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	// Coverage is the worker's *cumulative* delta — idempotent under
	// retries, and the superset assertion's per-worker term.
	Coverage coverage.Delta `json:"coverage"`
	// Corpus and Findings are new wire blobs since the last accepted
	// report (retried verbatim until acked).
	Corpus   [][]byte `json:"corpus,omitempty"`
	Findings [][]byte `json:"findings,omitempty"`
	// CorpusCursor is the worker's position in the coordinator's
	// corpus log; the response streams entries past it.
	CorpusCursor int `json:"corpus_cursor"`
	// NeedShard asks for (re)assignment: set on the first report and
	// at every round boundary.
	NeedShard bool `json:"need_shard,omitempty"`
	// Leaving announces a clean shutdown: the shard frees without an
	// expiry (not counted as a reassignment-by-death).
	Leaving bool `json:"leaving,omitempty"`
	// Error reports a fatal worker-side campaign error (boot failure,
	// conformance divergence).
	Error string `json:"error,omitempty"`
}

// ReportResponse acknowledges a report and streams back peer state.
type ReportResponse struct {
	OK bool `json:"ok"`
	// Reregister tells a worker the coordinator does not know it
	// (restart, lease expired and identity dropped): re-register and
	// start a fresh round.
	Reregister bool `json:"reregister,omitempty"`
	// Assignment is the (new) shard lease when the worker asked for
	// one; nil with RetryMS set when every shard is taken.
	Assignment *Assignment `json:"assignment,omitempty"`
	RetryMS    int64       `json:"retry_ms,omitempty"`
	// Corpus carries peer entries from the coordinator's log starting
	// at the worker's cursor (own entries excluded), and CorpusCursor
	// the new cursor.
	Corpus       [][]byte `json:"corpus,omitempty"`
	CorpusCursor int      `json:"corpus_cursor"`
	Error        string   `json:"error,omitempty"`
}

// WorkerStatus is one worker's row in the fleet status.
type WorkerStatus struct {
	ID          string    `json:"id"`
	Name        string    `json:"name"`
	Shard       int       `json:"shard"` // -1 when unassigned
	Live        bool      `json:"live"`
	Execs       int64     `json:"execs"`
	ExecsPerSec float64   `json:"execs_per_sec"`
	LastReport  time.Time `json:"last_report"`
	// Coverage is the worker's latest cumulative delta;  CoverageKeys
	// its distinct-key count (the cheap summary).
	Coverage     coverage.Delta `json:"coverage"`
	CoverageKeys int            `json:"coverage_keys"`
	Error        string         `json:"error,omitempty"`
}

// ShardStatus is one seed stream's row in the fleet status.
type ShardStatus struct {
	Shard  int    `json:"shard"`
	Seed   int64  `json:"seed"`
	Worker string `json:"worker,omitempty"` // current assignee
	Execs  int64  `json:"execs"`
	Rounds int64  `json:"rounds"`
	// Reassigns counts times this shard moved to a new worker after
	// its holder's lease expired — the dead-worker recovery the
	// fleet-smoke job asserts.
	Reassigns int64 `json:"reassigns"`
}

// FindingStatus is one deduplicated finding.
type FindingStatus struct {
	Hash string `json:"hash"` // canonical minimized-trace hash, hex
	// Count is how many times workers reported this identity; Workers
	// lists the distinct reporters.
	Count   int      `json:"count"`
	Workers []string `json:"workers"`
	Alarm   string   `json:"alarm,omitempty"`
	MinOps  int      `json:"min_ops"`
	Sched   bool     `json:"sched"`
}

// StatusResponse is the fleet-wide snapshot served at /fleet/v1/status.
type StatusResponse struct {
	WireVersion int            `json:"wire_version"`
	Elapsed     time.Duration  `json:"elapsed_ns"`
	WorkersLive int            `json:"workers_live"`
	Workers     []WorkerStatus `json:"workers"`
	Shards      []ShardStatus  `json:"shards"`
	// Execs and ExecsPerSec aggregate the live fleet.
	Execs       int64   `json:"execs"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	// Merged is the union coverage of every worker ever reported;
	// MergedImplCovered/Total summarise it against the outcome
	// universe.
	Merged            coverage.Delta `json:"merged_coverage"`
	MergedKeys        int            `json:"merged_coverage_keys"`
	MergedImplCovered int            `json:"merged_impl_covered"`
	MergedImplTotal   int            `json:"merged_impl_total"`
	// CorpusEntries is the deduplicated global corpus log size;
	// CorpusSynced counts entries accepted from workers,
	// CorpusFanout entries streamed out to peers.
	CorpusEntries int   `json:"corpus_entries"`
	CorpusSynced  int64 `json:"corpus_synced"`
	CorpusFanout  int64 `json:"corpus_fanout"`
	// FindingsReported counts every finding received;
	// FindingsDuplicate the ones dedup collapsed; Findings the
	// surviving unique entries.
	FindingsReported  int64           `json:"findings_reported"`
	FindingsDuplicate int64           `json:"findings_duplicate"`
	Findings          []FindingStatus `json:"findings"`
	Reassigns         int64           `json:"shard_reassigns"`
}
