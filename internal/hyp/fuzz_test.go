package hyp

import (
	"math/rand"
	"testing"

	"ghostspec/internal/arch"
)

// FuzzHandleTrap throws arbitrary register contents at the trap
// dispatcher: whatever a malicious host loads into x0..x5, the fixed
// hypervisor must never panic (internal panics are a security bug —
// the host controls these values). The seed corpus covers each
// hypercall ID with hostile argument patterns; `go test` runs the
// seeds, `go test -fuzz=FuzzHandleTrap` explores.
func FuzzHandleTrap(f *testing.F) {
	for id := uint64(0); id <= uint64(HCHostShareHypRange)+1; id++ {
		f.Add(id, uint64(0), uint64(0), uint64(0), uint64(0))
		f.Add(id, ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
		f.Add(id, uint64(0x40000), uint64(1)<<40, uint64(0xffff_ffff), uint64(7))
		f.Add(id, uint64(0x1000), uint64(3), uint64(0x4010_0000), uint64(0x10000))
	}
	hv, err := New(Config{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, a0, a1, a2, a3, a4 uint64) {
		regs := &hv.CPUs[0].HostRegs
		regs[0], regs[1], regs[2], regs[3], regs[4] = a0, a1, a2, a3, a4
		if err := hv.HandleTrap(0, arch.ExitHVC); err != nil {
			t.Fatalf("hypervisor panicked on host-controlled input %x: %v",
				[]uint64{a0, a1, a2, a3, a4}, err)
		}
	})
}

// FuzzHostMemAbort throws arbitrary fault addresses at the host abort
// handler.
func FuzzHostMemAbort(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1 << 30))
	f.Add(^uint64(0))
	f.Add(uint64(1<<48 - 1))
	f.Add(uint64(0x10_0000))
	hv, err := New(Config{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, addr uint64) {
		hv.CPUs[0].Fault = arch.FaultInfo{Addr: arch.IPA(addr), Write: addr&1 == 0}
		if err := hv.HandleTrap(0, arch.ExitMemAbort); err != nil {
			t.Fatalf("abort handler panicked on address %#x: %v", addr, err)
		}
	})
}

// TestRandomRegisterStorm is the fuzz property as a deterministic
// volume test: ten thousand arbitrary hypercalls against one system,
// no panic.
func TestRandomRegisterStorm(t *testing.T) {
	hv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10000; i++ {
		cpu := rng.Intn(len(hv.CPUs))
		regs := &hv.CPUs[cpu].HostRegs
		for r := 0; r < 6; r++ {
			switch rng.Intn(3) {
			case 0:
				regs[r] = rng.Uint64()
			case 1:
				regs[r] = uint64(rng.Intn(32))
			case 2:
				regs[r] = uint64(hv.HostMemStart()) + uint64(rng.Intn(1<<20))
			}
		}
		regs[0] = uint64(rng.Intn(20)) // plausible hypercall IDs
		if err := hv.HandleTrap(cpu, arch.ExitHVC); err != nil {
			t.Fatalf("storm call %d panicked: %v", i, err)
		}
	}
}
