// Package hyp is the pKVM-workalike hypervisor: a pure isolation
// kernel managing a stage 2 table for the Android host, a stage 2
// table per guest VM, and a stage 1 table for itself, with the
// hypercall API and ownership discipline of pKVM (paper §2).
//
// It is the implementation under test: deliberately written in the
// style of the real thing — generic walker callbacks, two-phase
// locking per component, page-state annotations squeezed into spare
// descriptor bits — so the ghost specification has the same kind of
// artifact to abstract. The faults.Injector re-introduces the paper's
// real and synthetic bugs at the code points where they lived.
package hyp

import (
	"fmt"
	"slices"

	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
	"ghostspec/internal/mem"
	"ghostspec/internal/pgtable"
	"ghostspec/internal/spinlock"
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

// Owner IDs stored in host stage 2 ownership annotations. The host is
// the default owner: host-owned unmapped memory is a plain invalid
// entry (annotation 0 is unencodable by construction).
const (
	// IDHyp marks memory owned by the hypervisor itself.
	IDHyp uint8 = 1
	// IDGuestBase is the owner ID of VM slot 0; slot s uses
	// IDGuestBase+s.
	IDGuestBase uint8 = 16
)

// VMIDs tag TLB entries with their translation regime, mirroring the
// hardware's VMID field (plus a sentinel for the EL2 stage 1 regime,
// which hardware distinguishes by translation context rather than
// VMID). The host runs on VMID 0, as KVM configures it; guest slot s
// uses 1+s, matching its hardware VMID allocation order.
const (
	// VMIDHost tags the host's stage 2 translations.
	VMIDHost arch.VMID = 0
	// VMIDHyp tags the hypervisor's own stage 1 translations.
	VMIDHyp arch.VMID = 0xffff
)

// VMIDForSlot returns the VMID of the guest in VM slot s.
func VMIDForSlot(slot int) arch.VMID { return arch.VMID(1 + slot) }

// GuestOwner returns the host-S2 annotation owner ID for a VM slot.
func GuestOwner(slot int) uint8 { return IDGuestBase + uint8(slot) }

// GuestSlot inverts GuestOwner, returning -1 for non-guest owners.
func GuestSlot(owner uint8) int {
	if owner < IDGuestBase || int(owner-IDGuestBase) >= MaxVMs {
		return -1
	}
	return int(owner - IDGuestBase)
}

// HypVAOffset is the hypervisor's linear-map offset: the hypervisor
// virtual address of physical address pa is pa+HypVAOffset.
const HypVAOffset uint64 = 0x8000_0000_0000

// UARTPhys is the physical address of the console device, inside the
// MMIO hole.
const UARTPhys arch.PhysAddr = 0x0010_0000

// Config parameterises a boot.
type Config struct {
	// NrCPUs is the number of hardware threads (default 4, the
	// paper's benchmark configuration).
	NrCPUs int
	// Layout is the physical map (default arch.DefaultLayout).
	Layout arch.MemLayout
	// HypPoolPages is the size of the carve-out donated to the
	// hypervisor at boot for its own allocations (default 1024).
	HypPoolPages uint64
	// Inj selects injected bugs; nil injects nothing.
	Inj *faults.Injector
	// NoTLB disables the software TLB: every translation re-walks the
	// tables, the pre-TLB behaviour. Used by the benchmark legs and by
	// tests that want walk-always semantics.
	NoTLB bool
	// Tracer, when set, receives execution spans (trap dispatch, table
	// mutations, TLB maintenance, oracle checks) on TraceLane. The
	// campaign engine passes one tracer with a lane per worker; nil
	// leaves the system untraced.
	Tracer *trace.Tracer
	// TraceLane is this system's lane in Tracer (one goroutine drives
	// one lane; see the trace package).
	TraceLane int
}

func (c *Config) fill() {
	if c.NrCPUs == 0 {
		c.NrCPUs = 4
	}
	if c.Layout == (arch.MemLayout{}) {
		c.Layout = arch.DefaultLayout()
	}
	if c.HypPoolPages == 0 {
		c.HypPoolPages = 1024
	}
}

// Globals are the boot-time constants of the hypervisor, the values
// the ghost state's globals member copies (paper §3.1).
type Globals struct {
	NrCPUs      int
	HypVAOffset uint64
	RAMStart    arch.PhysAddr
	RAMSize     uint64
	MMIOSize    uint64
	CarveStart  arch.PhysAddr // hypervisor-owned carve-out
	CarveSize   uint64
	UARTPhys    arch.PhysAddr
	UARTHypVA   arch.VirtAddr // where the boot mapped the console
}

// InRAM reports whether pa is DRAM, from the ghost copy of the boot
// constants (so specification code need not touch the live memory
// object).
func (g Globals) InRAM(pa arch.PhysAddr) bool {
	return pa >= g.RAMStart && uint64(pa-g.RAMStart) < g.RAMSize
}

// InMMIO reports whether pa is in the MMIO hole.
func (g Globals) InMMIO(pa arch.PhysAddr) bool { return uint64(pa) < g.MMIOSize }

// Hypervisor is the whole EL2 state: shared components each guarded by
// their own lock, and per-physical-CPU local state.
type Hypervisor struct {
	Mem  *arch.Memory
	CPUs []*arch.CPU
	Inj  *faults.Injector

	// HypPool is the allocator over the boot carve-out; host S2 and
	// hyp S1 table pages come from here.
	HypPool *mem.Pool

	hostLock *spinlock.Lock
	hostPGT  *pgtable.Table // host stage 2

	hypLock *spinlock.Lock
	hypPGT  *pgtable.Table // hypervisor's own stage 1

	vmsLock *spinlock.Lock
	//ghost:guards lock=vms
	vms [MaxVMs]*VM
	// reclaimable is the set of frames from torn-down VMs awaiting
	// host_reclaim_page; protected by vmsLock.
	//ghost:guards lock=vms
	reclaimable map[arch.PFN]bool

	percpu []*PerCPU

	// tlb is the software TLB modelling the hardware translation
	// caches; nil when Config.NoTLB disabled it (a nil TLB is a valid
	// no-op for maintenance, and the translate helpers fall back to
	// direct walks).
	tlb *arch.TLB
	// hostTLBIOff suppresses the host stage 2 TLBI notifications while
	// set — the injection window of BugUnshareSkipTLBI. Written and
	// read only under the host lock (the TLBI callback fires inside
	// host table mutations, which hold it).
	//ghost:guards lock=host
	hostTLBIOff bool

	globals Globals
	instr   Instrumentation
	// flight is the per-CPU ring of recent traps; oracle failure
	// reports attach dumps of it.
	flight *telemetry.FlightRecorder

	// tracer/traceLane carry the span tracer through every layer of
	// this system (trap dispatch here, mutations in pgtable, fills in
	// arch.TLB, checks in ghost); nil stays untraced.
	tracer    *trace.Tracer
	traceLane int
}

// New boots the hypervisor: builds the physical memory, carves out the
// hypervisor's own pool, constructs the initial stage 1 and host
// stage 2 tables, and leaves the system ready to take traps.
func New(cfg Config) (*Hypervisor, error) {
	cfg.fill()
	m := arch.NewMemory(cfg.Layout)
	carveStart := m.RAMStart()
	carveBytes := cfg.HypPoolPages << arch.PageShift
	if carveBytes >= m.RAMSize() {
		return nil, fmt.Errorf("hyp: carve-out %d pages exceeds RAM", cfg.HypPoolPages)
	}

	hv := &Hypervisor{
		Mem:         m,
		CPUs:        arch.NewCPUs(cfg.NrCPUs),
		Inj:         cfg.Inj,
		HypPool:     mem.NewPool("hyp", arch.PhysToPFN(carveStart), cfg.HypPoolPages),
		hostLock:    spinlock.NewRanked("host", LockRankHost, nil),
		hypLock:     spinlock.NewRanked("pkvm", LockRankHyp, nil),
		vmsLock:     spinlock.NewRanked("vms", LockRankVMTable, nil),
		reclaimable: make(map[arch.PFN]bool),
		percpu:      make([]*PerCPU, cfg.NrCPUs),
		instr:       nopInstr{},
		flight:      telemetry.NewFlightRecorder(cfg.NrCPUs, telemetry.DefaultFlightDepth),
		tracer:      cfg.Tracer,
		traceLane:   cfg.TraceLane,
	}
	for i := range hv.percpu {
		hv.percpu[i] = &PerCPU{LoadedVCPU: -1}
	}
	for _, l := range []*spinlock.Lock{hv.hostLock, hv.hypLock, hv.vmsLock} {
		l.SetTracer(hv.tracer, hv.traceLane)
	}
	if !cfg.NoTLB {
		hv.tlb = arch.NewTLB(m)
		hv.tlb.SetTracer(hv.tracer, hv.traceLane)
	}

	hv.globals = Globals{
		NrCPUs:      cfg.NrCPUs,
		HypVAOffset: HypVAOffset,
		RAMStart:    m.RAMStart(),
		RAMSize:     m.RAMSize(),
		MMIOSize:    cfg.Layout.MMIOSize,
		CarveStart:  carveStart,
		CarveSize:   carveBytes,
		UARTPhys:    UARTPhys,
	}

	if err := hv.initHypS1(); err != nil {
		return nil, err
	}
	if err := hv.initHostS2(); err != nil {
		return nil, err
	}

	for _, cpu := range hv.CPUs {
		cpu.TTBREL2 = hv.hypPGT.Root()
		cpu.VTTBR = hv.hostPGT.Root()
	}
	return hv, nil
}

// initHypS1 builds the hypervisor's own stage 1: the linear map of the
// carve-out (which self-maps the table pages being allocated) and the
// console device mapping. This is where the paper's bug 5 lived: for
// very large physical memory the device mapping's virtual address was
// computed into the middle of the linear map region.
func (hv *Hypervisor) initHypS1() error {
	pgt, err := pgtable.New("hyp_s1", hv.Mem, arch.Stage1, pgtable.PoolAllocator{Pool: hv.HypPool}, 2)
	if err != nil {
		return err
	}
	pgt.SetOnTablePage(liveTableGauge(telHypTablesLive))
	pgt.SetTLBI(hv.hypTLBI)
	pgt.SetTLB(hv.tlb, VMIDHyp)
	pgt.SetTracer(hv.tracer, hv.traceLane)
	hv.hypPGT = pgt

	g := &hv.globals
	ramEnd := uint64(g.RAMStart) + g.RAMSize
	uartVA := HypVAOffset + alignUpTo(ramEnd, 1<<30) // above the whole linear region
	if hv.Inj.Enabled(faults.BugLinearMapOverlap) {
		// The buggy computation truncates the linear-map end to 32
		// bits: identical for small memory, inside the linear region
		// for RAM extending past 4GB.
		uartVA = HypVAOffset + (alignUpTo(ramEnd, 1<<30) & 0xFFFF_FFFF)
	}
	g.UARTHypVA = arch.VirtAddr(uartVA)

	// Linear map of the carve-out: hyp-owned working memory.
	ownAttrs := arch.Attrs{Perms: arch.PermRW, Mem: arch.MemNormal, State: arch.StateOwned}
	if err := pgt.Map(HypVAOffset+uint64(g.CarveStart), g.CarveSize, g.CarveStart, ownAttrs, false); err != nil {
		return fmt.Errorf("hyp linear map: %w", err)
	}

	// Console device page. The correct address can never collide with
	// the linear map; the buggy one can, and force-overwrites a linear
	// page with a device mapping — the unchecked-IO hazard of bug 5.
	devAttrs := arch.Attrs{Perms: arch.PermRW, Mem: arch.MemDevice, State: arch.StateOwned}
	if err := pgt.Map(uartVA, arch.PageSize, g.UARTPhys, devAttrs, true); err != nil {
		return fmt.Errorf("hyp uart map: %w", err)
	}
	return nil
}

// initHostS2 builds the host's stage 2. Host memory is mapped on
// demand (paper §2), so the table starts almost empty: only the
// carve-out is annotated as hypervisor-owned so the host can never
// fault it in.
func (hv *Hypervisor) initHostS2() error {
	// Blocks down to level 1: big-memory devices demand-map whole 1GB
	// regions on first touch.
	pgt, err := pgtable.New("host_s2", hv.Mem, arch.Stage2, pgtable.PoolAllocator{Pool: hv.HypPool}, 1)
	if err != nil {
		return err
	}
	pgt.SetOnTablePage(liveTableGauge(telHostTablesLive))
	pgt.SetTLBI(hv.hostTLBI)
	pgt.SetTLB(hv.tlb, VMIDHost)
	pgt.SetTracer(hv.tracer, hv.traceLane)
	hv.hostPGT = pgt
	g := &hv.globals
	if err := pgt.Annotate(uint64(g.CarveStart), g.CarveSize, IDHyp); err != nil {
		return fmt.Errorf("host s2 carve-out annotation: %w", err)
	}
	return nil
}

func alignUpTo(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// Lock ranks: the global acquisition order, validated statically by
// ghostlint's lockcheck and dynamically by the spinlock rank
// validator (spinlock.EnableRankCheck). Every hypercall path acquires
// in strictly ascending rank: the VM table before any guest stage 2,
// a guest stage 2 before the host stage 2, the host stage 2 before
// the hypervisor's own stage 1. See docs/ANALYSIS.md for the table
// and the per-path derivation.
const (
	LockRankVMTable = 1 // vms
	LockRankGuest   = 2 // guest:<handle>
	LockRankHost    = 3 // host
	LockRankHyp     = 4 // pkvm
)

// VMTableLock exposes the VM-table lock. It exists for code that
// demonstrates or tests the lock discipline itself (internal/bugdemo,
// the rank validator tests); hypercall paths use the lockVMs helper
// so the ghost hooks fire.
func (hv *Hypervisor) VMTableLock() *spinlock.Lock { return hv.vmsLock }

// SetInstrumentation attaches the ghost hooks. It must be called
// before any hypercall traffic, mirroring the boot-time configuration
// of the instrumented build.
func (hv *Hypervisor) SetInstrumentation(in Instrumentation) {
	if in == nil {
		in = nopInstr{}
	}
	hv.instr = in
}

// Tracer exposes the system's span tracer and lane; the ghost
// recorder uses it to place oracle-check spans on the same lane as the
// traps they check. Nil when the system is untraced.
func (hv *Hypervisor) Tracer() (*trace.Tracer, int) { return hv.tracer, hv.traceLane }

// Globals returns the boot-time constants.
func (hv *Hypervisor) Globals() Globals { return hv.globals }

// HostMemStart returns the first physical address the host may
// allocate from (just past the carve-out).
func (hv *Hypervisor) HostMemStart() arch.PhysAddr {
	return hv.globals.CarveStart + arch.PhysAddr(hv.globals.CarveSize)
}

// HostMemPages returns the number of host-allocatable frames.
func (hv *Hypervisor) HostMemPages() uint64 {
	return (hv.globals.RAMSize - hv.globals.CarveSize) >> arch.PageShift
}

// HypVA returns the hypervisor virtual address of a physical address
// under the linear map.
func HypVA(pa arch.PhysAddr) arch.VirtAddr {
	return arch.VirtAddr(uint64(pa) + HypVAOffset)
}

// HostPGTRoot exposes the host stage 2 root; the ghost abstraction
// functions and the proxy's simulated hardware walks read through it.
func (hv *Hypervisor) HostPGTRoot() arch.PhysAddr { return hv.hostPGT.Root() }

// HypPGTRoot exposes the hypervisor stage 1 root for the ghost
// abstraction functions.
func (hv *Hypervisor) HypPGTRoot() arch.PhysAddr { return hv.hypPGT.Root() }

// VMSnapshot gives the ghost abstraction functions read access to a VM
// slot. The caller must hold the VM-table lock; reading an already
// looked-up slot under its own guest lock is the one sanctioned
// exception (slot pointers are stable while the guest lock pins the
// VM), and carries an explicit suppression at the call site.
//
//ghost:requires lock=vms
func (hv *Hypervisor) VMSnapshot(slot int) *VM {
	if slot < 0 || slot >= MaxVMs {
		return nil
	}
	return hv.vms[slot]
}

// ReclaimablePFNs reports the reclaim set as a sorted slice; the
// ghost abstraction of the VM table folds it into a run-encoded page
// set, and ascending order keeps that fold allocation-free. Caller
// must be under the vms lock (see VMSnapshot).
//
//ghost:requires lock=vms
func (hv *Hypervisor) ReclaimablePFNs() []arch.PFN {
	out := make([]arch.PFN, 0, len(hv.reclaimable))
	for k := range hv.reclaimable {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// PerCPUState exposes the physical CPU's hypervisor-local state to the
// ghost recording of thread locals.
func (hv *Hypervisor) PerCPUState(cpu int) PerCPU { return *hv.percpu[cpu] }

// LoadedMCPages returns the memcache contents of the vCPU loaded on
// cpu, or nil when none is loaded. While loaded, the memcache is owned
// by the physical CPU, so the ghost records it among the thread-locals
// rather than under the VM-table lock.
//
//ghostlint:ignore lockcheck lookupVM without the vms lock is the §3.1 ownership exception: vcpu_load transferred the memcache to this physical CPU, so the loaded slot cannot be torn down under us
func (hv *Hypervisor) LoadedMCPages(cpu int) []arch.PFN {
	pc := hv.percpu[cpu]
	if pc.LoadedVM == 0 {
		return nil
	}
	vm := hv.lookupVM(pc.LoadedVM)
	if vm == nil {
		return nil
	}
	return vm.VCPUs[pc.LoadedVCPU].MC.Pages()
}

// ---------------------------------------------------------------------
// Lock helpers: each takes the component lock and fires the ghost
// hooks while holding it, exactly like the paper's instrumented
// host_lock_component (§3.2).

func (hv *Hypervisor) lockHost(cpu int) {
	hv.hostLock.Lock()
	hv.instr.LockAcquired(cpu, Component{Kind: CompHost})
}

func (hv *Hypervisor) unlockHost(cpu int) {
	hv.instr.LockReleasing(cpu, Component{Kind: CompHost})
	hv.hostLock.Unlock()
}

func (hv *Hypervisor) lockHyp(cpu int) {
	hv.hypLock.Lock()
	hv.instr.LockAcquired(cpu, Component{Kind: CompHyp})
}

func (hv *Hypervisor) unlockHyp(cpu int) {
	hv.instr.LockReleasing(cpu, Component{Kind: CompHyp})
	hv.hypLock.Unlock()
}

func (hv *Hypervisor) lockVMs(cpu int) {
	hv.vmsLock.Lock()
	hv.instr.LockAcquired(cpu, Component{Kind: CompVMTable})
}

func (hv *Hypervisor) unlockVMs(cpu int) {
	hv.instr.LockReleasing(cpu, Component{Kind: CompVMTable})
	hv.vmsLock.Unlock()
}

func (hv *Hypervisor) lockGuest(cpu int, vm *VM) {
	vm.Lock.Lock()
	hv.instr.LockAcquired(cpu, Component{Kind: CompGuest, Handle: vm.Handle})
}

func (hv *Hypervisor) unlockGuest(cpu int, vm *VM) {
	hv.instr.LockReleasing(cpu, Component{Kind: CompGuest, Handle: vm.Handle})
	vm.Lock.Unlock()
}
