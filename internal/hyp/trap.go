package hyp

import (
	"ghostspec/internal/arch"
)

// HC is a hypercall function ID, passed by the host in x0.
type HC uint64

// The host-facing hypercall API (paper §2): memory
// sharing/donation/reclaim, VM and vCPU lifecycle, and the vCPU
// memcache topup path.
const (
	HCHostShareHyp HC = iota + 1
	HCHostUnshareHyp
	HCHostDonateHyp
	HCHostReclaimPage
	HCInitVM
	HCInitVCPU
	HCTeardownVM
	HCVCPULoad
	HCVCPUPut
	HCVCPURun
	HCHostMapGuest
	HCTopupVCPUMemcache
	// HCHostShareHypRange is the phased extension: it shares a run of
	// pages, taking and releasing the locks per page — the
	// release-and-retake execution style the paper notes needs
	// transactional instrumentation (handled here per lock session).
	HCHostShareHypRange
)

func (h HC) String() string {
	switch h {
	case HCHostShareHyp:
		return "host_share_hyp"
	case HCHostUnshareHyp:
		return "host_unshare_hyp"
	case HCHostDonateHyp:
		return "host_donate_hyp"
	case HCHostReclaimPage:
		return "host_reclaim_page"
	case HCInitVM:
		return "init_vm"
	case HCInitVCPU:
		return "init_vcpu"
	case HCTeardownVM:
		return "teardown_vm"
	case HCVCPULoad:
		return "vcpu_load"
	case HCVCPUPut:
		return "vcpu_put"
	case HCVCPURun:
		return "vcpu_run"
	case HCHostMapGuest:
		return "host_map_guest"
	case HCTopupVCPUMemcache:
		return "topup_vcpu_memcache"
	case HCHostShareHypRange:
		return "host_share_hyp_range"
	}
	return "unknown_hypercall"
}

// VCPU run exit codes, returned to the host in x1 (with detail in
// x2/x3) after HCVCPURun.
const (
	// RunExitYield: the guest yielded (interrupt, or nothing to do).
	RunExitYield int64 = 0
	// RunExitMemAbort: the guest took a stage 2 fault; x2 carries the
	// IPA and x3 the write flag — the virtio-style notification path.
	RunExitMemAbort int64 = 2
)

// HandleTrap is the top-level EL2 exception handler (the paper's
// handle_trap): it dispatches hypercalls and host stage 2 aborts,
// writes the return registers, and fires the ghost entry/exit hooks.
//
// An internal hypervisor panic — which takes down a real machine — is
// recovered into a *PanicError so test campaigns can observe it and
// carry on with a fresh system.
func (hv *Hypervisor) HandleTrap(cpuID int, reason arch.ExitReason) (err error) {
	cpu := hv.CPUs[cpuID]
	// The trap span closes last (deferred first): it covers the handler,
	// the telemetry finish, and the ghost oracle running from TrapExit.
	sp := hv.tracer.Begin(hv.traceLane, hv.trapSpanName(cpuID, reason))
	defer sp.End()
	var tel trapTelemetry
	tel.begin(hv, cpuID, reason)
	hv.instr.TrapEntry(cpuID, reason)
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				tel.finish(hv, cpuID, reason, true)
				err = pe
				return
			}
			panic(r)
		}
		// The flight record lands before the ghost oracle runs in
		// TrapExit, so a failure dump includes the failing trap itself
		// as its newest entry.
		tel.finish(hv, cpuID, reason, false)
		hv.instr.TrapExit(cpuID)
	}()

	switch reason {
	case arch.ExitHVC:
		ret := hv.dispatchHVC(cpuID)
		cpu.HostRegs[0] = 0 // SMCCC: call accepted
		cpu.HostRegs[1] = uint64(ret)
	case arch.ExitMemAbort:
		hv.handleHostMemAbort(cpuID)
	case arch.ExitIRQ:
		// Interrupts pass straight back to the host.
	}
	return nil
}

func (hv *Hypervisor) dispatchHVC(cpu int) int64 {
	regs := &hv.CPUs[cpu].HostRegs
	id := HC(regs[0])
	a1, a2, a3, a4 := regs[1], regs[2], regs[3], regs[4]
	switch id {
	case HCHostShareHyp:
		return int64(hv.hostShareHyp(cpu, arch.PFN(a1)))
	case HCHostUnshareHyp:
		return int64(hv.hostUnshareHyp(cpu, arch.PFN(a1)))
	case HCHostDonateHyp:
		return int64(hv.hostDonateHyp(cpu, arch.PFN(a1), a2))
	case HCHostReclaimPage:
		return int64(hv.hostReclaimPage(cpu, arch.PFN(a1)))
	case HCInitVM:
		return hv.initVM(cpu, int(a1), arch.PFN(a2), a3)
	case HCInitVCPU:
		return int64(hv.initVCPU(cpu, Handle(a1), int(a2)))
	case HCTeardownVM:
		return int64(hv.teardownVM(cpu, Handle(a1)))
	case HCVCPULoad:
		return int64(hv.vcpuLoad(cpu, Handle(a1), int(a2)))
	case HCVCPUPut:
		return int64(hv.vcpuPut(cpu))
	case HCVCPURun:
		return hv.vcpuRun(cpu)
	case HCHostMapGuest:
		return int64(hv.hostMapGuest(cpu, arch.PFN(a1), a2))
	case HCTopupVCPUMemcache:
		return int64(hv.topupVCPUMemcache(cpu, Handle(a1), int(a2), arch.PhysAddr(a3), a4))
	case HCHostShareHypRange:
		return int64(hv.hostShareHypRange(cpu, arch.PFN(a1), a2))
	}
	return int64(ENOSYS)
}
