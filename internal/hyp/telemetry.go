package hyp

import (
	"time"

	"ghostspec/internal/arch"
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

// The hypervisor's telemetry instruments. All are registered once at
// package init (registration is the only allocating step); the hot
// path performs atomic adds only, behind the global telemetry.Disabled
// gate.

// nrHCs is one past the largest hypercall ID, for per-HC counter
// arrays.
const nrHCs = int(HCHostShareHypRange) + 1

var (
	// hcCalls counts dispatches per hypercall, labelled with the
	// symbolic call name.
	hcCalls [nrHCs]*telemetry.Counter
	// hcUnknown counts ENOSYS dispatches of out-of-range IDs.
	hcUnknown *telemetry.Counter

	// trapLatency is the end-to-end handler latency per exit reason
	// (hypercall entry to exit, excluding the ghost hooks' own oracle
	// check, which ghost reports separately).
	trapLatHVC   = telemetry.NewHistogram(`hyp_trap_latency_ns{reason="hvc"}`)
	trapLatAbort = telemetry.NewHistogram(`hyp_trap_latency_ns{reason="mem-abort"}`)
	trapLatIRQ   = telemetry.NewHistogram(`hyp_trap_latency_ns{reason="irq"}`)

	trapsTotal  = telemetry.NewCounter("hyp_traps_total")
	hypPanics   = telemetry.NewCounter("hyp_panics_total")
	readOnces   = telemetry.NewCounter("hyp_read_once_total")
	stateChecks = telemetry.NewCounter("hyp_state_check_walks_total")

	// Host stage 2 abort outcomes.
	abortDemandMapped = telemetry.NewCounter(`hyp_host_aborts_total{outcome="demand-mapped"}`)
	abortReflected    = telemetry.NewCounter(`hyp_host_aborts_total{outcome="reflected"}`)
	abortSpurious     = telemetry.NewCounter(`hyp_host_aborts_total{outcome="spurious"}`)

	// Live table pages per translation table, fed by the pgtable
	// allocation notifications. Guests share one aggregate gauge.
	telHypTablesLive   = telemetry.NewGauge(`pgtable_table_pages_live{table="hyp_s1"}`)
	telHostTablesLive  = telemetry.NewGauge(`pgtable_table_pages_live{table="host_s2"}`)
	telGuestTablesLive = telemetry.NewGauge(`pgtable_table_pages_live{table="guest_s2"}`)
)

// Per-dispatch trap span names: one per hypercall (so the span
// aggregate attributes cost per call, not just per trap) plus the two
// non-HVC exit reasons. Filled alongside the per-HC counters in init.
var (
	spanTrapHVC     [nrHCs]trace.Name
	spanTrapUnknown trace.Name
	spanTrapAbort   = trace.NewName("hyp.trap:host_mem_abort")
	spanTrapIRQ     = trace.NewName("hyp.trap:irq")
)

// liveTableGauge adapts a gauge to the pgtable table-page notification
// callback.
func liveTableGauge(g *telemetry.Gauge) func(arch.PFN, bool) {
	return func(_ arch.PFN, alloc bool) {
		if telemetry.Disabled() {
			return
		}
		if alloc {
			g.Add(1)
		} else {
			g.Add(-1)
		}
	}
}

func init() {
	for id := HC(1); int(id) < nrHCs; id++ {
		hcCalls[id] = telemetry.NewCounter(`hyp_hypercall_calls_total{call="` + id.String() + `"}`)
		spanTrapHVC[id] = trace.NewName("hyp.trap:" + id.String())
	}
	hcUnknown = telemetry.NewCounter(`hyp_hypercall_calls_total{call="` + HC(0).String() + `"}`)
	spanTrapUnknown = trace.NewName("hyp.trap:" + HC(0).String())
}

// trapSpanName picks the span name for one trap: the per-hypercall
// name for HVC exits (read from x0 before the handler overwrites the
// registers), the exit-reason name otherwise.
func (hv *Hypervisor) trapSpanName(cpu int, reason arch.ExitReason) trace.Name {
	switch reason {
	case arch.ExitHVC:
		if id := HC(hv.CPUs[cpu].HostRegs[0]); id >= 1 && int(id) < nrHCs {
			return spanTrapHVC[id]
		}
		return spanTrapUnknown
	case arch.ExitMemAbort:
		return spanTrapAbort
	}
	return spanTrapIRQ
}

// hcCounter returns the per-call counter for a (possibly out of range)
// hypercall ID.
func hcCounter(id HC) *telemetry.Counter {
	if id >= 1 && int(id) < nrHCs {
		return hcCalls[id]
	}
	return hcUnknown
}

// hcErrorCounter returns (creating on first use) the error counter for
// one (hypercall, errno) pair, labelled with both symbolic names. The
// error path is cold, so the name concatenation here is acceptable;
// the registry dedupes, so each pair allocates once per process.
func hcErrorCounter(id HC, e Errno) *telemetry.Counter {
	//ghostlint:ignore telemetrycheck cold error path; the registry dedupes, so each (call,errno) pair registers once per process
	return telemetry.NewCounter(
		`hyp_hypercall_errors_total{call="` + id.String() + `",errno="` + e.String() + `"}`)
}

// hcRetString renders a hypercall return value symbolically: errno
// names on failure, run-exit names for vcpu_run, "handle" for a
// successful init_vm, "OK" otherwise. Every branch returns a constant
// string, so flight recording stays allocation-free.
func hcRetString(id HC, ret int64) string {
	if ret < 0 {
		return Errno(ret).String()
	}
	switch id {
	case HCVCPURun:
		return RunExitString(ret)
	case HCInitVM:
		if ret >= int64(HandleOffset) {
			return "handle"
		}
	}
	return "OK"
}

// trapTelemetry is the per-trap telemetry capture: filled at trap
// entry, finished (metrics + flight record) at exit. Kept in a local
// on HandleTrap's stack — no allocation per trap.
type trapTelemetry struct {
	on    bool
	start time.Time
	hc    HC
	ev    telemetry.TrapEvent
}

// begin captures the entry-side state: the clock, and the hypercall
// ID/arguments before the handler overwrites the return registers.
func (t *trapTelemetry) begin(hv *Hypervisor, cpu int, reason arch.ExitReason) {
	t.on = !telemetry.Disabled()
	if !t.on {
		return
	}
	t.start = time.Now()
	regs := &hv.CPUs[cpu].HostRegs
	t.ev = telemetry.TrapEvent{Kind: reason.String()}
	switch reason {
	case arch.ExitHVC:
		t.hc = HC(regs[0])
		t.ev.Name = t.hc.String()
		t.ev.Args = [4]uint64{regs[1], regs[2], regs[3], regs[4]}
	case arch.ExitMemAbort:
		fault := hv.CPUs[cpu].Fault
		t.ev.Name = "host_mem_abort"
		t.ev.Args[0] = uint64(fault.Addr)
		if fault.Write {
			t.ev.Args[1] = 1
		}
	case arch.ExitIRQ:
		t.ev.Name = "irq"
	}
}

// finish observes the latency, bumps the per-call and error counters,
// and records the trap into the flight recorder. panicked marks a trap
// that died in a hypervisor panic (its return registers were never
// written).
func (t *trapTelemetry) finish(hv *Hypervisor, cpu int, reason arch.ExitReason, panicked bool) {
	if !t.on {
		return
	}
	t.ev.Dur = time.Since(t.start)
	trapsTotal.Inc()
	switch reason {
	case arch.ExitHVC:
		trapLatHVC.ObserveDuration(t.ev.Dur)
		hcCounter(t.hc).Inc()
		if panicked {
			t.ev.RetStr = "hyp-panic"
		} else {
			ret := int64(hv.CPUs[cpu].HostRegs[1])
			t.ev.Ret = ret
			t.ev.RetStr = hcRetString(t.hc, ret)
			if ret < 0 {
				hcErrorCounter(t.hc, Errno(ret)).Inc()
			}
		}
	case arch.ExitMemAbort:
		trapLatAbort.ObserveDuration(t.ev.Dur)
		if panicked {
			t.ev.RetStr = "hyp-panic"
		} else if hv.percpu[cpu].LastAbortInjected {
			t.ev.RetStr = "reflected"
		} else {
			t.ev.RetStr = "mapped"
		}
	case arch.ExitIRQ:
		trapLatIRQ.ObserveDuration(t.ev.Dur)
		t.ev.RetStr = "OK"
	}
	hv.flight.Record(cpu, t.ev)
}

// FlightRecorder exposes the per-CPU trap history; the ghost recorder
// attaches a dump of it to every oracle failure report.
func (hv *Hypervisor) FlightRecorder() *telemetry.FlightRecorder { return hv.flight }
