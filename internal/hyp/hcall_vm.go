package hyp

import (
	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
	"ghostspec/internal/spinlock"
)

// InitVMDonation returns the number of pages the host must donate with
// an init_vm call for a VM with nrVCPUs virtual CPUs: the stage 2 root
// plus metadata backing.
func InitVMDonation(nrVCPUs int) uint64 { return uint64(2 + nrVCPUs) }

// donationAllocator feeds a page table from a fixed set of donated
// frames; once they are consumed it is empty (further growth must come
// from a vCPU memcache).
type donationAllocator struct {
	pages *[]arch.PFN
}

func (d donationAllocator) AllocTablePage() (arch.PFN, bool) {
	ps := *d.pages
	if len(ps) == 0 {
		return 0, false
	}
	pfn := ps[len(ps)-1]
	*d.pages = ps[:len(ps)-1]
	return pfn, true
}

func (d donationAllocator) FreeTablePage(pfn arch.PFN) {
	*d.pages = append(*d.pages, pfn)
}

// initVM implements __pkvm_init_vm: the host donates pages for the
// VM's metadata and stage 2 root and receives a handle. Returns the
// handle (positive) or an errno.
func (hv *Hypervisor) initVM(cpu int, nrVCPUs int, donPFN arch.PFN, donNr uint64) int64 {
	if nrVCPUs < 1 || nrVCPUs > MaxVCPUs || donNr != InitVMDonation(nrVCPUs) {
		return int64(EINVAL)
	}
	donPhys := donPFN.Phys()
	donSize := donNr << arch.PageShift
	if !hv.Mem.InRAM(donPhys) || !hv.Mem.InRAM(donPhys+arch.PhysAddr(donSize)-1) {
		return int64(EINVAL)
	}

	hv.lockVMs(cpu)
	hv.lockHost(cpu)
	defer func() {
		hv.unlockHost(cpu)
		hv.unlockVMs(cpu)
	}()

	slot := -1
	for i, vm := range hv.vms {
		if vm == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		return int64(ENOSPC)
	}

	if ret := hv.hostCheckState(arch.IPA(donPhys), donSize, arch.StateOwned); ret != OK {
		return int64(ret)
	}
	if ret := hv.hostSetOwner(arch.IPA(donPhys), donSize, IDHyp); ret != OK {
		return int64(ret)
	}
	// Scrub the donation: host data must not leak into hypervisor
	// structures.
	donated := make([]arch.PFN, 0, donNr)
	for i := uint64(0); i < donNr; i++ {
		pfn := donPFN + arch.PFN(i)
		hv.clearPage(pfn.Phys())
		donated = append(donated, pfn)
	}

	handle := HandleOffset + Handle(slot)
	vm := &VM{
		Handle:    handle,
		VMID:      VMIDForSlot(slot),
		State:     VMActive,
		Protected: true,
		NrVCPUs:   nrVCPUs,
		Lock:      spinlock.NewRanked("guest:"+handle.String(), LockRankGuest, nil),
	}
	vm.Lock.SetTracer(hv.tracer, hv.traceLane)
	for i := 0; i < nrVCPUs; i++ {
		vm.VCPUs = append(vm.VCPUs, &VCPU{Idx: i, LoadedOn: -1})
	}
	// The stage 2 root comes out of the donation; what remains backs
	// the metadata and stays attached to the VM for eventual reclaim.
	vm.donated = donated
	pgt, err := newTableFromDonation(hv, vm)
	if err != nil {
		return int64(errnoOf(err))
	}
	vm.PGT = pgt
	hv.vms[slot] = vm
	return int64(handle)
}

// initVCPU implements __pkvm_init_vcpu: marks one of the VM's vCPUs
// ready to load.
func (hv *Hypervisor) initVCPU(cpu int, handle Handle, idx int) Errno {
	hv.lockVMs(cpu)
	defer hv.unlockVMs(cpu)

	vm := hv.lookupVM(handle)
	if vm == nil || vm.State != VMActive {
		return ENOENT
	}
	if idx < 0 || idx >= vm.NrVCPUs {
		return EINVAL
	}
	vcpu := vm.VCPUs[idx]
	if vcpu.Initialized {
		return EEXIST
	}
	vcpu.Initialized = true
	return OK
}

// teardownVM implements __pkvm_teardown_vm: destroys the VM, moving
// all pages it held — donated metadata, stage 2 table pages, memcache
// reserves, and guest-owned memory — into the reclaim set the host
// drains with host_reclaim_page.
func (hv *Hypervisor) teardownVM(cpu int, handle Handle) Errno {
	hv.lockVMs(cpu)
	defer hv.unlockVMs(cpu)

	vm := hv.lookupVM(handle)
	if vm == nil || vm.State != VMActive {
		return ENOENT
	}
	for _, vcpu := range vm.VCPUs {
		if vcpu.LoadedOn >= 0 {
			return EBUSY
		}
	}

	hv.lockGuest(cpu, vm)
	// Guest-owned data pages: everything the guest stage 2 maps.
	for _, pfn := range guestMappedFrames(vm) {
		hv.reclaimable[pfn] = true
	}
	// The table pages themselves (donation- and memcache-sourced).
	collect := collectAllocator{set: hv.reclaimable}
	vm.PGT.Alloc = collect
	vm.PGT.Destroy()
	vm.PGT = nil
	// Destroy tears the stage 2 down without per-entry unmaps, so no
	// break-before-make TLBIs fired: the whole regime is invalidated
	// by VMID instead (TLBI VMALLS12E1IS), still under the guest lock
	// so no new walk of the dead table can refill behind it.
	hv.tlb.InvalidateVMID(vm.VMID)
	hv.unlockGuest(cpu, vm)

	for _, vcpu := range vm.VCPUs {
		for _, pfn := range vcpu.MC.Drain() {
			hv.reclaimable[pfn] = true
		}
	}
	for _, pfn := range vm.donated {
		hv.reclaimable[pfn] = true
	}
	vm.donated = nil
	vm.State = VMTeardown
	hv.vms[handle.slot(MaxVMs)] = nil
	return OK
}

// vcpuLoad implements __pkvm_vcpu_load: transfers ownership of the
// vCPU's state from the VM-table lock to this physical CPU (paper
// §3.1's ownership subtlety). The paper's bug 3 was missing
// synchronisation here, permitting a load to observe an uninitialised
// vCPU.
func (hv *Hypervisor) vcpuLoad(cpu int, handle Handle, idx int) Errno {
	pc := hv.percpu[cpu]
	if pc.LoadedVM != 0 {
		return EBUSY
	}

	hv.lockVMs(cpu)
	defer hv.unlockVMs(cpu)

	vm := hv.lookupVM(handle)
	if vm == nil || vm.State != VMActive {
		return ENOENT
	}
	if idx < 0 || idx >= vm.NrVCPUs {
		return EINVAL
	}
	vcpu := vm.VCPUs[idx]
	// The buggy path skips the initialisation check — the relaxed
	// vcpu_load/vcpu_init race re-created deterministically.
	if !hv.Inj.Enabled(faults.BugVCPULoadRace) && !vcpu.Initialized {
		return ENOENT
	}
	if vcpu.LoadedOn >= 0 {
		return EBUSY
	}
	vcpu.LoadedOn = cpu
	pc.LoadedVM = handle
	pc.LoadedVCPU = idx
	hv.CPUs[cpu].GuestRegs = vcpu.Regs
	return OK
}

// vcpuPut implements __pkvm_vcpu_put: saves the guest context and
// returns vCPU ownership to the VM-table lock.
func (hv *Hypervisor) vcpuPut(cpu int) Errno {
	pc := hv.percpu[cpu]
	if pc.LoadedVM == 0 {
		return ENOENT
	}

	hv.lockVMs(cpu)
	defer hv.unlockVMs(cpu)

	vm := hv.lookupVM(pc.LoadedVM)
	if vm == nil {
		hv.hypPanic(cpu, "vcpu_put: loaded VM %v vanished", pc.LoadedVM)
	}
	vcpu := vm.VCPUs[pc.LoadedVCPU]
	vcpu.Regs = hv.CPUs[cpu].GuestRegs
	vcpu.LoadedOn = -1
	pc.LoadedVM = 0
	pc.LoadedVCPU = -1
	return OK
}

// hostMapGuest implements __pkvm_host_map_guest: the host donates one
// of its pages into the currently loaded vCPU's VM at the given guest
// frame number. The guest's table grows from the vCPU's memcache, so
// this can fail with -ENOMEM if the host has not topped it up — a
// loosely specified failure (paper §4.3).
func (hv *Hypervisor) hostMapGuest(cpu int, pfn arch.PFN, gfn uint64) Errno {
	pc := hv.percpu[cpu]
	if pc.LoadedVM == 0 {
		return ENOENT
	}
	phys := pfn.Phys()
	gpa := gfn << arch.PageShift
	if !hv.Mem.InRAM(phys) || !arch.CanonicalIA(gpa) {
		return EINVAL
	}

	hv.lockVMs(cpu)
	vm := hv.lookupVM(pc.LoadedVM)
	if vm == nil || vm.State != VMActive {
		hv.unlockVMs(cpu)
		return ENOENT
	}
	vcpu := vm.VCPUs[pc.LoadedVCPU]
	hv.unlockVMs(cpu)

	hv.lockGuest(cpu, vm)
	hv.lockHost(cpu)
	defer func() {
		hv.unlockHost(cpu)
		hv.unlockGuest(cpu, vm)
	}()

	if ret := hv.hostCheckState(arch.IPA(phys), arch.PageSize, arch.StateOwned); ret != OK {
		return ret
	}
	// The guest target must be unmapped.
	if pte, _ := vm.PGT.GetLeaf(gpa); pte.Valid() {
		return EEXIST
	}
	slot := vm.Handle.slot(MaxVMs)
	if ret := hv.hostSetOwner(arch.IPA(phys), arch.PageSize, GuestOwner(slot)); ret != OK {
		return ret
	}
	hv.clearPage(phys) // scrub host data before the guest sees it

	vm.PGT.Alloc = memcacheAllocator{hv: hv, cpu: cpu, vcpu: vcpu}
	attrs := arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: arch.StateOwned}
	if err := vm.PGT.Map(gpa, arch.PageSize, phys, attrs, false); err != nil {
		// Roll the ownership transfer back so the failure is clean.
		ret := errnoOf(err)
		if r2 := hv.hostSetOwner(arch.IPA(phys), arch.PageSize, 0); r2 != OK {
			hv.hypPanic(cpu, "map_guest: rollback failed: %v", r2)
		}
		return ret
	}
	return OK
}

// topupVCPUMemcache implements the memcache topup path: the host
// threads a linked list through the pages it is donating (each page's
// first word holds the physical address of the next) and passes its
// head. The hypervisor pops nr pages off the list, taking ownership
// of each. The paper's bugs 1 and 2 live here: a missing alignment
// check on the host-supplied addresses, and a truncating size check.
func (hv *Hypervisor) topupVCPUMemcache(cpu int, handle Handle, idx int, head arch.PhysAddr, nr uint64) Errno {
	take := int64(nr)
	if hv.Inj.Enabled(faults.BugMemcacheSize) {
		// The buggy bound check truncates the count first; huge
		// counts slip through as zero or negative.
		take = int64(int16(nr))
	} else if nr > MemcacheCapPages {
		return EINVAL
	}

	hv.lockVMs(cpu)
	hv.lockHost(cpu)
	defer func() {
		hv.unlockHost(cpu)
		hv.unlockVMs(cpu)
	}()

	vm := hv.lookupVM(handle)
	if vm == nil || vm.State != VMActive {
		return ENOENT
	}
	if idx < 0 || idx >= vm.NrVCPUs {
		return EINVAL
	}
	vcpu := vm.VCPUs[idx]
	if !vcpu.Initialized {
		return ENOENT
	}
	if vcpu.LoadedOn >= 0 {
		// The memcache is owned by the loading CPU while loaded;
		// topping it up from here would race with it.
		return EBUSY
	}

	addr := head
	for i := int64(0); i < take; i++ {
		if !hv.Inj.Enabled(faults.BugMemcacheAlignment) {
			if !arch.PageAligned(uint64(addr)) {
				return EINVAL
			}
		} else if addr&7 != 0 {
			// Even the buggy path cannot survive a misaligned word
			// read in this model.
			return EINVAL
		}
		page := arch.PhysAddr(arch.AlignDown(uint64(addr)))
		if !hv.Mem.InRAM(page) {
			return EINVAL
		}
		if ret := hv.hostCheckState(arch.IPA(page), arch.PageSize, arch.StateOwned); ret != OK {
			return ret
		}
		// Read the next pointer before scrubbing destroys it. The
		// host still owns the page, so this is a READ_ONCE the
		// specification is parameterised on.
		next := hv.readOnceHost(cpu, addr)
		if ret := hv.hostSetOwner(arch.IPA(page), arch.PageSize, IDHyp); ret != OK {
			return ret
		}
		// Scrub at the host-supplied address: with the alignment
		// check missing, this wanders across the frame boundary.
		hv.clearPage(addr)
		vcpu.MC.Push(arch.PhysToPFN(page))
		addr = arch.PhysAddr(next)
	}
	return OK
}

// lookupVM resolves a handle to its VM slot. The slot array is
// protected by the VM-table lock; LoadedMCPages documents the one
// sanctioned lock-free exception.
//
//ghost:requires lock=vms
func (hv *Hypervisor) lookupVM(handle Handle) *VM {
	slot := handle.slot(MaxVMs)
	if slot < 0 {
		return nil
	}
	return hv.vms[slot]
}
