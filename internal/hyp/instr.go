package hyp

import "ghostspec/internal/arch"

// Component identifies a lock-protected portion of the hypervisor's
// shared state, the granularity at which the ghost machinery records
// abstractions (paper §3.1, "following the ownership structure").
type Component struct {
	// Kind selects which lock/state this is.
	Kind ComponentKind
	// Handle is the VM handle for CompGuest components, zero
	// otherwise.
	Handle Handle
}

// ComponentKind enumerates the lock-protected components.
type ComponentKind uint8

const (
	// CompHost is the host stage 2 page table and its lock.
	CompHost ComponentKind = iota
	// CompHyp is the hypervisor's own stage 1 page table and its lock.
	CompHyp
	// CompVMTable is the table of VM metadata and its lock.
	CompVMTable
	// CompGuest is one VM's stage 2 page table and its lock.
	CompGuest
)

func (k ComponentKind) String() string {
	switch k {
	case CompHost:
		return "host"
	case CompHyp:
		return "pkvm"
	case CompVMTable:
		return "vms"
	case CompGuest:
		return "guest"
	}
	return "?"
}

func (c Component) String() string {
	if c.Kind == CompGuest {
		return "guest:" + c.Handle.String()
	}
	return c.Kind.String()
}

// Instrumentation is the set of hooks the ghost specification attaches
// to the hypervisor. Every callback runs synchronously on the hardware
// thread it names; the lock callbacks run while the named component's
// lock is held, so a hook that records the component's abstraction is
// reading owned state. A nil Instrumentation on the hypervisor
// disables all recording (the CONFIG_NVHE_GHOST_SPEC=n build).
type Instrumentation interface {
	// TrapEntry runs at the top of the exception handler, before any
	// locks are taken: the ghost records the thread-local pre-state.
	TrapEntry(cpu int, reason arch.ExitReason)
	// TrapExit runs at the bottom of the handler, after all locks are
	// released and the return registers are written: the ghost
	// records the thread-local post-state and runs the oracle check.
	TrapExit(cpu int)
	// LockAcquired runs immediately after the component's lock is
	// taken (the paper's record_and_check_abstraction_*_pre).
	LockAcquired(cpu int, c Component)
	// LockReleasing runs immediately before the component's lock is
	// dropped (record_..._post).
	LockReleasing(cpu int, c Component)
	// ReadOnce records a nondeterministic read of host-owned memory —
	// the READ_ONCE values the specification is parameterised on
	// (paper §4.3).
	ReadOnce(cpu int, pa arch.PhysAddr, val uint64)
	// GuestExit records which guest event a vcpu_run handler
	// processed, another environment parameter of the specification.
	GuestExit(cpu int, handle Handle, vcpu int, op GuestOp)
	// MemcacheAlloc/MemcacheFree record the loaded vCPU's memcache
	// traffic during guest table growth. How many table pages a
	// mapping needs is memory-management detail the abstract state
	// deliberately omits, so the specification takes the pop/push
	// sequence as an environment parameter, like READ_ONCE values.
	MemcacheAlloc(cpu int, pfn arch.PFN)
	MemcacheFree(cpu int, pfn arch.PFN)
	// HypPanic records that the hypervisor hit an internal panic.
	HypPanic(cpu int, msg string)
}

// nopInstr is the disabled-instrumentation build.
type nopInstr struct{}

func (nopInstr) TrapEntry(int, arch.ExitReason)      {}
func (nopInstr) TrapExit(int)                        {}
func (nopInstr) LockAcquired(int, Component)         {}
func (nopInstr) LockReleasing(int, Component)        {}
func (nopInstr) ReadOnce(int, arch.PhysAddr, uint64) {}
func (nopInstr) GuestExit(int, Handle, int, GuestOp) {}
func (nopInstr) MemcacheAlloc(int, arch.PFN)         {}
func (nopInstr) MemcacheFree(int, arch.PFN)          {}
func (nopInstr) HypPanic(int, string)                {}
