package hyp

import (
	"ghostspec/internal/arch"
	"ghostspec/internal/pgtable"
)

// MemcacheCapPages bounds one topup request; re-exported from the
// memcache so the specification side shares the constant.
const MemcacheCapPages = 128

// newTableFromDonation builds a VM's stage 2 table, drawing the root
// page from the VM's donated frames. Guests are mapped at page
// granularity: donations arrive a page at a time.
//
//ghost:requires lock=vms
func newTableFromDonation(hv *Hypervisor, vm *VM) (*pgtable.Table, error) {
	pgt, err := pgtable.New("guest_s2:"+vm.Handle.String(), hv.Mem, arch.Stage2,
		donationAllocator{pages: &vm.donated}, arch.LastLevel)
	if err != nil {
		return nil, err
	}
	// One aggregate gauge across all guests: per-handle labels would
	// grow the registry without bound as VMs come and go.
	pgt.SetOnTablePage(liveTableGauge(telGuestTablesLive))
	pgt.SetTLBI(hv.guestTLBI(vm.VMID))
	pgt.SetTLB(hv.tlb, vm.VMID)
	pgt.SetTracer(hv.tracer, hv.traceLane)
	return pgt, nil
}

// memcacheAllocator feeds a guest table from the running vCPU's
// donated reserve, reporting each pop and push to the instrumentation
// as specification environment data.
type memcacheAllocator struct {
	hv   *Hypervisor
	cpu  int
	vcpu *VCPU
}

func (a memcacheAllocator) AllocTablePage() (arch.PFN, bool) {
	pfn, ok := a.vcpu.MC.Pop()
	if ok {
		a.hv.instr.MemcacheAlloc(a.cpu, pfn)
	}
	return pfn, ok
}

func (a memcacheAllocator) FreeTablePage(pfn arch.PFN) {
	a.vcpu.MC.Push(pfn)
	a.hv.instr.MemcacheFree(a.cpu, pfn)
}

// collectAllocator is the teardown allocator: it cannot allocate, and
// everything freed into it lands in the reclaim set.
type collectAllocator struct {
	set map[arch.PFN]bool
}

func (c collectAllocator) AllocTablePage() (arch.PFN, bool) { return 0, false }
func (c collectAllocator) FreeTablePage(pfn arch.PFN)       { c.set[pfn] = true }

// guestMappedFrames returns the physical frames the guest stage 2
// currently maps — the guest-owned memory that must be reclaimable
// after teardown. Caller holds the guest lock.
//
//ghost:requires lock=guest
func guestMappedFrames(vm *VM) []arch.PFN {
	var out []arch.PFN
	_ = vm.PGT.Walk(0, 1<<arch.IABits, &pgtable.Visitor{
		Flags: pgtable.VisitLeaf,
		Fn: func(ctx *pgtable.VisitCtx) error {
			if ctx.PTE.Valid() {
				base := arch.PhysToPFN(ctx.PTE.OutputAddr(ctx.Level))
				for i := uint64(0); i < ctx.NrPages; i++ {
					out = append(out, base+arch.PFN(i))
				}
			}
			return nil
		},
	})
	return out
}
