package hyp

import (
	"errors"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
)

// newTestHV boots a small system with the given injected bugs.
func newTestHV(t *testing.T, bugs ...faults.Bug) *Hypervisor {
	t.Helper()
	hv, err := New(Config{Inj: faults.NewInjector(bugs...)})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return hv
}

// hvc issues a hypercall on cpu and returns the x1 result.
func hvc(t *testing.T, hv *Hypervisor, cpu int, id HC, args ...uint64) int64 {
	t.Helper()
	regs := &hv.CPUs[cpu].HostRegs
	regs[0] = uint64(id)
	for i, a := range args {
		regs[i+1] = a
	}
	if err := hv.HandleTrap(cpu, arch.ExitHVC); err != nil {
		t.Fatalf("%v trap: %v", id, err)
	}
	return int64(regs[1])
}

// hostTouch simulates a host data access: a stage 2 walk, faulting to
// EL2 on a miss, then a retry. Returns false if the fault was
// reflected back into the host (the access failed).
func hostTouch(t *testing.T, hv *Hypervisor, cpu int, ipa arch.IPA, write bool) bool {
	t.Helper()
	acc := arch.Access{Write: write}
	if _, fault := arch.Walk(hv.Mem, hv.HostPGTRoot(), uint64(ipa), acc); fault == nil {
		return true
	}
	hv.CPUs[cpu].Fault = arch.FaultInfo{Addr: ipa, Write: write}
	if err := hv.HandleTrap(cpu, arch.ExitMemAbort); err != nil {
		t.Fatalf("mem abort trap: %v", err)
	}
	_, fault := arch.Walk(hv.Mem, hv.HostPGTRoot(), uint64(ipa), acc)
	return fault == nil
}

// hostPFN returns the n'th host-allocatable frame.
func hostPFN(hv *Hypervisor, n uint64) arch.PFN {
	return arch.PhysToPFN(hv.HostMemStart()) + arch.PFN(n)
}

func TestBootLayout(t *testing.T) {
	hv := newTestHV(t)
	g := hv.Globals()
	if g.NrCPUs != 4 {
		t.Errorf("NrCPUs = %d", g.NrCPUs)
	}
	if g.CarveStart != g.RAMStart {
		t.Error("carve-out not at RAM base")
	}
	// The hypervisor's own linear map covers the carve-out.
	for off := uint64(0); off < g.CarveSize; off += arch.PageSize {
		va := HypVAOffset + uint64(g.CarveStart) + off
		res, f := arch.WalkRead(hv.Mem, hv.HypPGTRoot(), va)
		if f != nil || res.OutputAddr != g.CarveStart+arch.PhysAddr(off) {
			t.Fatalf("linear map broken at +%#x: %v", off, f)
		}
	}
	// The console mapping is above the linear region.
	res, f := arch.WalkRead(hv.Mem, hv.HypPGTRoot(), uint64(g.UARTHypVA))
	if f != nil || res.OutputAddr != g.UARTPhys || res.Attrs.Mem != arch.MemDevice {
		t.Errorf("uart mapping: %+v fault %v", res, f)
	}
	if uint64(g.UARTHypVA) < HypVAOffset+uint64(g.RAMStart)+g.RAMSize {
		t.Error("uart VA inside the linear region")
	}
}

func TestBootCarveOutProtected(t *testing.T) {
	hv := newTestHV(t)
	g := hv.Globals()
	// The host cannot fault in the hypervisor's carve-out.
	if hostTouch(t, hv, 0, arch.IPA(g.CarveStart), true) {
		t.Error("host accessed the hypervisor carve-out")
	}
	if !hv.PerCPUState(0).LastAbortInjected {
		t.Error("abort on carve-out not injected back to host")
	}
}

func TestHostDemandMapping(t *testing.T) {
	hv := newTestHV(t)
	pfn := hostPFN(hv, 10)
	if !hostTouch(t, hv, 0, arch.IPA(pfn.Phys()), true) {
		t.Fatal("host could not fault in its own memory")
	}
	// The fault should have installed a whole 2MB block when the
	// surrounding region is free.
	pte, level := hv.hostPGT.GetLeaf(uint64(pfn.Phys()))
	if level != 2 || pte.Kind(level) != arch.EKBlock {
		t.Errorf("demand mapping: level %d %v, want level 2 block", level, pte.Kind(level))
	}
	if pte.Attrs().State != arch.StateOwned {
		t.Errorf("demand mapping state = %v", pte.Attrs().State)
	}
}

func TestHostDemandMapping1GBBlock(t *testing.T) {
	// On a big-memory device a fault in a fully-free, fully-DRAM 1GB
	// region gets a level 1 block.
	big := arch.MemLayout{RAMStart: 1 << 30, RAMSize: 4 << 30, MMIOSize: 16 << 20}
	hv, err := New(Config{Layout: big})
	if err != nil {
		t.Fatal(err)
	}
	// Fault well past the carve-out's GB so the containing 1GB entry
	// is entirely free: the region at 3GB.
	ipa := arch.IPA(3 << 30)
	if !hostTouch(t, hv, 0, ipa, true) {
		t.Fatal("fault-in failed")
	}
	pte, level := hv.hostPGT.GetLeaf(uint64(ipa))
	if level != 1 || pte.Kind(level) != arch.EKBlock {
		t.Errorf("big-memory demand map: level %d %v, want level 1 block", level, pte.Kind(level))
	}
	// The far end of the GB translates without another fault.
	far := uint64(ipa) + 1<<30 - arch.PageSize
	if _, f := arch.WalkRead(hv.Mem, hv.HostPGTRoot(), far); f != nil {
		t.Errorf("far end of 1GB block faults: %v", f)
	}
	// Sharing one page inside it splits two levels down and the share
	// still works.
	pfn := arch.PhysToPFN(arch.PhysAddr(ipa)) + 12345
	if ret := hvc(t, hv, 0, HCHostShareHyp, uint64(pfn)); ret != 0 {
		t.Fatalf("share inside 1GB block: %v", Errno(ret))
	}
	if _, level := hv.hostPGT.GetLeaf(uint64(pfn.Phys())); level != 3 {
		t.Errorf("share did not split to page level: %d", level)
	}
}

func TestHostDemandMappingMMIO(t *testing.T) {
	hv := newTestHV(t)
	if !hostTouch(t, hv, 0, arch.IPA(UARTPhys), true) {
		t.Fatal("host could not fault in MMIO")
	}
	pte, level := hv.hostPGT.GetLeaf(uint64(UARTPhys))
	if level != 3 {
		t.Errorf("MMIO mapped at level %d, want single page", level)
	}
	if a := pte.Attrs(); a.Mem != arch.MemDevice || a.Perms&arch.PermX != 0 {
		t.Errorf("MMIO attrs = %v", a)
	}
}

func TestHostAbortOutsidePhysicalMap(t *testing.T) {
	hv := newTestHV(t)
	beyond := arch.IPA(uint64(hv.Globals().RAMStart) + hv.Globals().RAMSize + 1<<30)
	if hostTouch(t, hv, 0, beyond, false) {
		t.Error("host accessed a hole in the physical map")
	}
}

func TestSpuriousHostFaultIsRobust(t *testing.T) {
	hv := newTestHV(t)
	pfn := hostPFN(hv, 3)
	ipa := arch.IPA(pfn.Phys())
	if !hostTouch(t, hv, 0, ipa, true) {
		t.Fatal("initial fault-in failed")
	}
	// Re-deliver a fault for the now-mapped page: the fixed handler
	// treats it as spurious.
	hv.CPUs[0].Fault = arch.FaultInfo{Addr: ipa, Write: true}
	if err := hv.HandleTrap(0, arch.ExitMemAbort); err != nil {
		t.Errorf("spurious fault panicked the hypervisor: %v", err)
	}
}

func TestSpuriousHostFaultPanicsWithBug(t *testing.T) {
	hv := newTestHV(t, faults.BugHostFaultRetry)
	pfn := hostPFN(hv, 3)
	ipa := arch.IPA(pfn.Phys())
	if !hostTouch(t, hv, 0, ipa, true) {
		t.Fatal("initial fault-in failed")
	}
	hv.CPUs[0].Fault = arch.FaultInfo{Addr: ipa, Write: true}
	err := hv.HandleTrap(0, arch.ExitMemAbort)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("buggy spurious fault: err = %v, want PanicError", err)
	}
}

func TestShareUnshareHyp(t *testing.T) {
	hv := newTestHV(t)
	pfn := hostPFN(hv, 0)
	phys := pfn.Phys()

	if ret := hvc(t, hv, 0, HCHostShareHyp, uint64(pfn)); ret != 0 {
		t.Fatalf("share: %v", Errno(ret))
	}
	// Host side: identity mapping, shared-owned.
	hpte, _ := hv.hostPGT.GetLeaf(uint64(phys))
	if !hpte.Valid() || hpte.Attrs().State != arch.StateSharedOwned {
		t.Errorf("host side after share: %v %v", hpte.Kind(3), hpte.Attrs())
	}
	// Hyp side: borrowed RW mapping at the linear address.
	res, f := arch.WalkRead(hv.Mem, hv.HypPGTRoot(), uint64(HypVA(phys)))
	if f != nil || res.OutputAddr != phys {
		t.Fatalf("hyp side after share: %v", f)
	}
	if a := res.Attrs; a.State != arch.StateSharedBorrowed || a.Perms != arch.PermRW {
		t.Errorf("hyp attrs after share: %v", a)
	}

	if ret := hvc(t, hv, 0, HCHostUnshareHyp, uint64(pfn)); ret != 0 {
		t.Fatalf("unshare: %v", Errno(ret))
	}
	hpte, _ = hv.hostPGT.GetLeaf(uint64(phys))
	if hpte.Attrs().State != arch.StateOwned {
		t.Errorf("host state after unshare: %v", hpte.Attrs().State)
	}
	if _, f := arch.WalkRead(hv.Mem, hv.HypPGTRoot(), uint64(HypVA(phys))); f == nil {
		t.Error("hyp mapping survived unshare")
	}
}

func TestShareErrors(t *testing.T) {
	hv := newTestHV(t)
	pfn := hostPFN(hv, 0)

	// Double share: second must fail EPERM (already shared-owned).
	if ret := hvc(t, hv, 0, HCHostShareHyp, uint64(pfn)); ret != 0 {
		t.Fatal("first share failed")
	}
	if ret := hvc(t, hv, 0, HCHostShareHyp, uint64(pfn)); Errno(ret) != EPERM {
		t.Errorf("double share = %v, want EPERM", Errno(ret))
	}
	// Sharing the hypervisor's own carve-out: EPERM.
	carve := arch.PhysToPFN(hv.Globals().CarveStart)
	if ret := hvc(t, hv, 0, HCHostShareHyp, uint64(carve)); Errno(ret) != EPERM {
		t.Errorf("share of carve-out = %v, want EPERM", Errno(ret))
	}
	// Sharing MMIO: EINVAL (not memory).
	if ret := hvc(t, hv, 0, HCHostShareHyp, uint64(arch.PhysToPFN(UARTPhys))); Errno(ret) != EINVAL {
		t.Errorf("share of MMIO = %v, want EINVAL", Errno(ret))
	}
	// Unshare of something never shared: EPERM.
	if ret := hvc(t, hv, 0, HCHostUnshareHyp, uint64(hostPFN(hv, 5))); Errno(ret) != EPERM {
		t.Errorf("unshare of unshared = %v, want EPERM", Errno(ret))
	}
}

func TestUnknownHypercall(t *testing.T) {
	hv := newTestHV(t)
	if ret := hvc(t, hv, 0, HC(0x999)); Errno(ret) != ENOSYS {
		t.Errorf("unknown hypercall = %v, want ENOSYS", Errno(ret))
	}
}

func TestDonateHyp(t *testing.T) {
	hv := newTestHV(t)
	pfn := hostPFN(hv, 20)
	if ret := hvc(t, hv, 0, HCHostDonateHyp, uint64(pfn), 4); ret != 0 {
		t.Fatalf("donate: %v", Errno(ret))
	}
	// Host side: annotated hyp-owned; host loses access.
	for i := uint64(0); i < 4; i++ {
		pte, level := hv.hostPGT.GetLeaf(uint64((pfn + arch.PFN(i)).Phys()))
		if pte.Kind(level) != arch.EKAnnotated || pte.OwnerID() != IDHyp {
			t.Errorf("page %d not hyp-annotated after donate", i)
		}
	}
	if hostTouch(t, hv, 0, arch.IPA(pfn.Phys()), false) {
		t.Error("host still reaches donated memory")
	}
	// Hyp side mapped owned.
	res, f := arch.WalkRead(hv.Mem, hv.HypPGTRoot(), uint64(HypVA(pfn.Phys())))
	if f != nil || res.Attrs.State != arch.StateOwned {
		t.Errorf("hyp side after donate: %+v %v", res, f)
	}
	// Re-donating the same range fails.
	if ret := hvc(t, hv, 0, HCHostDonateHyp, uint64(pfn), 4); Errno(ret) != EPERM {
		t.Errorf("double donate = %v, want EPERM", Errno(ret))
	}
	// Bad sizes.
	if ret := hvc(t, hv, 0, HCHostDonateHyp, uint64(pfn), 0); Errno(ret) != EINVAL {
		t.Errorf("donate nr=0 = %v", Errno(ret))
	}
	if ret := hvc(t, hv, 0, HCHostDonateHyp, uint64(pfn), MaxDonate+1); Errno(ret) != EINVAL {
		t.Errorf("donate nr>max = %v", Errno(ret))
	}
}

// setupVM creates a VM with one initialised vCPU and returns its
// handle. Pages n..n+donation-1 from base are donated.
func setupVM(t *testing.T, hv *Hypervisor, cpu int, base uint64) Handle {
	t.Helper()
	don := InitVMDonation(1)
	ret := hvc(t, hv, cpu, HCInitVM, 1, uint64(hostPFN(hv, base)), don)
	if ret < int64(HandleOffset) {
		t.Fatalf("init_vm: %v", Errno(ret))
	}
	h := Handle(ret)
	if r := hvc(t, hv, cpu, HCInitVCPU, uint64(h), 0); r != 0 {
		t.Fatalf("init_vcpu: %v", Errno(r))
	}
	return h
}

func TestVMLifecycle(t *testing.T) {
	hv := newTestHV(t)
	h := setupVM(t, hv, 0, 100)

	// Donated pages are hyp-owned now.
	if hostTouch(t, hv, 0, arch.IPA(hostPFN(hv, 100).Phys()), false) {
		t.Error("host reaches pages donated to a VM")
	}

	// Load / run (quiescent guest yields) / put.
	if r := hvc(t, hv, 0, HCVCPULoad, uint64(h), 0); r != 0 {
		t.Fatalf("vcpu_load: %v", Errno(r))
	}
	if r := hvc(t, hv, 0, HCVCPURun); r != RunExitYield {
		t.Fatalf("vcpu_run: %v", r)
	}
	if r := hvc(t, hv, 0, HCVCPUPut); r != 0 {
		t.Fatalf("vcpu_put: %v", Errno(r))
	}

	// Teardown and reclaim everything.
	if r := hvc(t, hv, 0, HCTeardownVM, uint64(h)); r != 0 {
		t.Fatalf("teardown: %v", Errno(r))
	}
	for i := uint64(0); i < InitVMDonation(1); i++ {
		pfn := hostPFN(hv, 100+i)
		if r := hvc(t, hv, 0, HCHostReclaimPage, uint64(pfn)); r != 0 {
			t.Fatalf("reclaim page %d: %v", i, Errno(r))
		}
	}
	// Host owns the pages again.
	if !hostTouch(t, hv, 0, arch.IPA(hostPFN(hv, 100).Phys()), true) {
		t.Error("host cannot reach reclaimed pages")
	}
	// Reclaiming twice fails.
	if r := hvc(t, hv, 0, HCHostReclaimPage, uint64(hostPFN(hv, 100))); Errno(r) != EPERM {
		t.Errorf("double reclaim = %v, want EPERM", Errno(r))
	}
}

func TestVMLifecycleErrors(t *testing.T) {
	hv := newTestHV(t)

	// init_vm with wrong donation size.
	if r := hvc(t, hv, 0, HCInitVM, 1, uint64(hostPFN(hv, 100)), 99); Errno(r) != EINVAL {
		t.Errorf("bad donation = %v", Errno(r))
	}
	// init_vm with zero or too many vcpus.
	if r := hvc(t, hv, 0, HCInitVM, 0, uint64(hostPFN(hv, 100)), InitVMDonation(0)); Errno(r) != EINVAL {
		t.Errorf("0 vcpus = %v", Errno(r))
	}
	h := setupVM(t, hv, 0, 100)

	// init_vcpu duplicate and out of range.
	if r := hvc(t, hv, 0, HCInitVCPU, uint64(h), 0); Errno(r) != EEXIST {
		t.Errorf("re-init vcpu = %v", Errno(r))
	}
	if r := hvc(t, hv, 0, HCInitVCPU, uint64(h), 5); Errno(r) != EINVAL {
		t.Errorf("init vcpu 5 of 1 = %v", Errno(r))
	}
	// load of bad handle / uninitialised vcpu.
	if r := hvc(t, hv, 0, HCVCPULoad, 0x9999, 0); Errno(r) != ENOENT {
		t.Errorf("load bad handle = %v", Errno(r))
	}
	// run/put with nothing loaded.
	if r := hvc(t, hv, 0, HCVCPURun); Errno(r) != ENOENT {
		t.Errorf("run unloaded = %v", Errno(r))
	}
	if r := hvc(t, hv, 0, HCVCPUPut); Errno(r) != ENOENT {
		t.Errorf("put unloaded = %v", Errno(r))
	}
	// Double load on one CPU / load of loaded vcpu on another.
	if r := hvc(t, hv, 0, HCVCPULoad, uint64(h), 0); r != 0 {
		t.Fatal("load failed")
	}
	if r := hvc(t, hv, 0, HCVCPULoad, uint64(h), 0); Errno(r) != EBUSY {
		t.Errorf("double load same cpu = %v", Errno(r))
	}
	if r := hvc(t, hv, 1, HCVCPULoad, uint64(h), 0); Errno(r) != EBUSY {
		t.Errorf("load of loaded vcpu = %v", Errno(r))
	}
	// Teardown while loaded.
	if r := hvc(t, hv, 1, HCTeardownVM, uint64(h)); Errno(r) != EBUSY {
		t.Errorf("teardown while loaded = %v", Errno(r))
	}
}

func TestVCPULoadUninitialised(t *testing.T) {
	hv := newTestHV(t)
	don := InitVMDonation(2)
	ret := hvc(t, hv, 0, HCInitVM, 2, uint64(hostPFN(hv, 100)), don)
	h := Handle(ret)
	// vCPU 1 never initialised: the fixed load refuses.
	if r := hvc(t, hv, 0, HCVCPULoad, uint64(h), 1); Errno(r) != ENOENT {
		t.Errorf("load of uninitialised vcpu = %v, want ENOENT", Errno(r))
	}
}

func TestVCPULoadRaceBug(t *testing.T) {
	hv := newTestHV(t, faults.BugVCPULoadRace)
	don := InitVMDonation(2)
	ret := hvc(t, hv, 0, HCInitVM, 2, uint64(hostPFN(hv, 100)), don)
	h := Handle(ret)
	// With the bug injected, loading the uninitialised vCPU succeeds —
	// the defect the runtime oracle must flag.
	if r := hvc(t, hv, 0, HCVCPULoad, uint64(h), 1); r != 0 {
		t.Errorf("buggy load of uninitialised vcpu = %v, want success", Errno(r))
	}
}

// topupList builds the linked list of donation pages in host memory
// and returns the head address.
func topupList(hv *Hypervisor, pfns []arch.PFN) arch.PhysAddr {
	for i, pfn := range pfns {
		next := uint64(0)
		if i+1 < len(pfns) {
			next = uint64(pfns[i+1].Phys())
		}
		hv.Mem.Write64(pfn.Phys(), next)
	}
	return pfns[0].Phys()
}

func TestTopupAndMapGuest(t *testing.T) {
	hv := newTestHV(t)
	h := setupVM(t, hv, 0, 100)

	// Top up the vCPU memcache with 4 pages.
	pfns := []arch.PFN{hostPFN(hv, 200), hostPFN(hv, 201), hostPFN(hv, 202), hostPFN(hv, 203)}
	head := topupList(hv, pfns)
	if r := hvc(t, hv, 0, HCTopupVCPUMemcache, uint64(h), 0, uint64(head), 4); r != 0 {
		t.Fatalf("topup: %v", Errno(r))
	}
	hv.lockVMs(0)
	mcLen := hv.lookupVM(h).VCPUs[0].MC.Len()
	hv.unlockVMs(0)
	if mcLen != 4 {
		t.Fatalf("memcache depth = %d, want 4", mcLen)
	}

	// Map a host page into the guest at gfn 16.
	if r := hvc(t, hv, 0, HCVCPULoad, uint64(h), 0); r != 0 {
		t.Fatal("load failed")
	}
	guestPage := hostPFN(hv, 300)
	if r := hvc(t, hv, 0, HCHostMapGuest, uint64(guestPage), 16); r != 0 {
		t.Fatalf("map_guest: %v", Errno(r))
	}
	// Guest sees the page at IPA 16<<12.
	hv.lockVMs(0)
	vm := hv.lookupVM(h)
	hv.unlockVMs(0)
	res, f := arch.WalkRead(hv.Mem, vm.PGT.Root(), 16<<arch.PageShift)
	if f != nil || res.OutputAddr != guestPage.Phys() {
		t.Fatalf("guest walk: %+v %v", res, f)
	}
	// Host lost the page.
	if hostTouch(t, hv, 1, arch.IPA(guestPage.Phys()), false) {
		t.Error("host reaches guest-owned page")
	}
	// Mapping the same gfn again: EEXIST.
	if r := hvc(t, hv, 0, HCHostMapGuest, uint64(hostPFN(hv, 301)), 16); Errno(r) != EEXIST {
		t.Errorf("double map_guest = %v", Errno(r))
	}
	// Mapping an already-donated page: EPERM.
	if r := hvc(t, hv, 0, HCHostMapGuest, uint64(guestPage), 17); Errno(r) != EPERM {
		t.Errorf("map_guest of guest page = %v", Errno(r))
	}
}

func TestMapGuestNoMemcache(t *testing.T) {
	hv := newTestHV(t)
	h := setupVM(t, hv, 0, 100)
	if r := hvc(t, hv, 0, HCVCPULoad, uint64(h), 0); r != 0 {
		t.Fatal("load failed")
	}
	// Empty memcache: the guest table cannot grow.
	if r := hvc(t, hv, 0, HCHostMapGuest, uint64(hostPFN(hv, 300)), 16); Errno(r) != ENOMEM {
		t.Errorf("map_guest with empty memcache = %v, want ENOMEM", Errno(r))
	}
	// The ownership rollback worked: the host still owns the page.
	if !hostTouch(t, hv, 1, arch.IPA(hostPFN(hv, 300).Phys()), true) {
		t.Error("failed map_guest leaked the page ownership")
	}
}

func TestTopupErrors(t *testing.T) {
	hv := newTestHV(t)
	h := setupVM(t, hv, 0, 100)

	// Oversized request.
	if r := hvc(t, hv, 0, HCTopupVCPUMemcache, uint64(h), 0, uint64(hostPFN(hv, 200).Phys()), MemcacheCapPages+1); Errno(r) != EINVAL {
		t.Errorf("oversized topup = %v", Errno(r))
	}
	// Misaligned page address.
	bad := uint64(hostPFN(hv, 200).Phys()) + 0x800
	if r := hvc(t, hv, 0, HCTopupVCPUMemcache, uint64(h), 0, bad, 1); Errno(r) != EINVAL {
		t.Errorf("misaligned topup = %v, want EINVAL", Errno(r))
	}
	// Donating a page the host does not own.
	carve := uint64(hv.Globals().CarveStart)
	if r := hvc(t, hv, 0, HCTopupVCPUMemcache, uint64(h), 0, carve, 1); Errno(r) != EPERM {
		t.Errorf("topup with hyp page = %v, want EPERM", Errno(r))
	}
}

func TestTopupAlignmentBug(t *testing.T) {
	hv := newTestHV(t, faults.BugMemcacheAlignment)
	h := setupVM(t, hv, 0, 100)
	// A misaligned donation address now slips through. Zeroing 4KB
	// from the middle of frame 200 wanders into frame 201.
	victim := hostPFN(hv, 201)
	hv.Mem.Write64(victim.Phys(), 0xdead_beef)
	bad := uint64(hostPFN(hv, 200).Phys()) + 0x800
	hv.Mem.Write64(arch.PhysAddr(bad), 0) // next pointer: end of list
	if r := hvc(t, hv, 0, HCTopupVCPUMemcache, uint64(h), 0, bad, 1); r != 0 {
		t.Fatalf("buggy topup = %v, want success", Errno(r))
	}
	if hv.Mem.Read64(victim.Phys()) != 0 {
		t.Error("bug did not zero the neighbouring frame (injection broken)")
	}
}

func TestTopupSizeBug(t *testing.T) {
	hv := newTestHV(t, faults.BugMemcacheSize)
	h := setupVM(t, hv, 0, 100)
	// 0x10000 truncates to int16 zero: the buggy path reports success
	// without donating anything.
	if r := hvc(t, hv, 0, HCTopupVCPUMemcache, uint64(h), 0, uint64(hostPFN(hv, 200).Phys()), 0x10000); r != 0 {
		t.Fatalf("buggy oversized topup = %v, want success", Errno(r))
	}
	hv.lockVMs(0)
	mcLen := hv.lookupVM(h).VCPUs[0].MC.Len()
	hv.unlockVMs(0)
	if mcLen != 0 {
		t.Errorf("memcache depth = %d after truncated topup", mcLen)
	}
}

func TestGuestShareUnshareHost(t *testing.T) {
	hv := newTestHV(t)
	h := setupVM(t, hv, 0, 100)
	pfns := []arch.PFN{hostPFN(hv, 200), hostPFN(hv, 201), hostPFN(hv, 202)}
	head := topupList(hv, pfns)
	if r := hvc(t, hv, 0, HCTopupVCPUMemcache, uint64(h), 0, uint64(head), 3); r != 0 {
		t.Fatal("topup failed")
	}
	if r := hvc(t, hv, 0, HCVCPULoad, uint64(h), 0); r != 0 {
		t.Fatal("load failed")
	}
	guestPage := hostPFN(hv, 300)
	if r := hvc(t, hv, 0, HCHostMapGuest, uint64(guestPage), 16); r != 0 {
		t.Fatal("map_guest failed")
	}

	// Guest shares the page back with the host.
	ipa := arch.IPA(16 << arch.PageShift)
	hv.QueueGuestOp(h, 0, GuestOp{Kind: GuestShareHost, IPA: ipa})
	if r := hvc(t, hv, 0, HCVCPURun); r != RunExitYield {
		t.Fatalf("run = %v", r)
	}
	if e := ErrnoFromReg(hv.CPUs[0].GuestRegs[0]); e != OK {
		t.Fatalf("guest_share_host = %v", e)
	}
	// Host can now access the guest's page.
	if !hostTouch(t, hv, 1, arch.IPA(guestPage.Phys()), true) {
		t.Error("host cannot reach guest-shared page")
	}
	hpte, _ := hv.hostPGT.GetLeaf(uint64(guestPage.Phys()))
	if hpte.Attrs().State != arch.StateSharedBorrowed {
		t.Errorf("host state = %v, want borrowed", hpte.Attrs().State)
	}

	// Guest revokes the share.
	hv.QueueGuestOp(h, 0, GuestOp{Kind: GuestUnshareHost, IPA: ipa})
	if r := hvc(t, hv, 0, HCVCPURun); r != RunExitYield {
		t.Fatalf("run = %v", r)
	}
	if e := ErrnoFromReg(hv.CPUs[0].GuestRegs[0]); e != OK {
		t.Fatalf("guest_unshare_host = %v", e)
	}
	if hostTouch(t, hv, 1, arch.IPA(guestPage.Phys()), false) {
		t.Error("host still reaches unshared guest page")
	}
}

func TestGuestAccessAndFault(t *testing.T) {
	hv := newTestHV(t)
	h := setupVM(t, hv, 0, 100)
	pfns := []arch.PFN{hostPFN(hv, 200), hostPFN(hv, 201), hostPFN(hv, 202)}
	if r := hvc(t, hv, 0, HCTopupVCPUMemcache, uint64(h), 0, uint64(topupList(hv, pfns)), 3); r != 0 {
		t.Fatal("topup failed")
	}
	if r := hvc(t, hv, 0, HCVCPULoad, uint64(h), 0); r != 0 {
		t.Fatal("load failed")
	}
	// Unmapped access exits to host with fault detail.
	hv.QueueGuestOp(h, 0, GuestOp{Kind: GuestAccess, IPA: 16 << arch.PageShift, Write: true, Value: 7})
	if r := hvc(t, hv, 0, HCVCPURun); r != RunExitMemAbort {
		t.Fatalf("run = %v, want mem abort exit", r)
	}
	if hv.CPUs[0].HostRegs[2] != 16<<arch.PageShift || hv.CPUs[0].HostRegs[3] != 1 {
		t.Errorf("fault detail = %#x write=%v", hv.CPUs[0].HostRegs[2], hv.CPUs[0].HostRegs[3])
	}
	// Host maps the page; the retried access succeeds.
	guestPage := hostPFN(hv, 300)
	if r := hvc(t, hv, 0, HCHostMapGuest, uint64(guestPage), 16); r != 0 {
		t.Fatal("map_guest failed")
	}
	hv.QueueGuestOp(h, 0, GuestOp{Kind: GuestAccess, IPA: 16 << arch.PageShift, Write: true, Value: 0xabcd})
	if r := hvc(t, hv, 0, HCVCPURun); r != RunExitYield {
		t.Fatalf("retried access = %v", r)
	}
	if got := hv.Mem.Read64(guestPage.Phys()); got != 0xabcd {
		t.Errorf("guest write landed as %#x", got)
	}
}

func TestLinearMapOverlapBug(t *testing.T) {
	// Large physical memory: RAM extends past 4GB.
	big := arch.MemLayout{RAMStart: 1 << 30, RAMSize: 4 << 30, MMIOSize: 16 << 20}

	fixed, err := New(Config{Layout: big})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	gF := fixed.Globals()
	if uint64(gF.UARTHypVA) < HypVAOffset+uint64(gF.RAMStart)+gF.RAMSize {
		t.Error("fixed boot placed UART inside the linear region")
	}

	buggy, err := New(Config{Layout: big, Inj: faults.NewInjector(faults.BugLinearMapOverlap)})
	if err != nil {
		t.Fatalf("buggy boot: %v", err)
	}
	gB := buggy.Globals()
	linStart := HypVAOffset + uint64(gB.CarveStart)
	linEnd := linStart + gB.CarveSize
	if uint64(gB.UARTHypVA) >= linStart && uint64(gB.UARTHypVA) < linEnd {
		// The carve-out linear map itself got a device hole punched in
		// it: hypervisor working-memory accesses hit the device.
		res, f := arch.WalkRead(buggy.Mem, buggy.HypPGTRoot(), uint64(gB.UARTHypVA))
		if f != nil || res.Attrs.Mem != arch.MemDevice {
			t.Error("overlap did not materialise as a device mapping in the linear region")
		}
	}
}

func TestHandleString(t *testing.T) {
	for id := HCHostShareHyp; id <= HCTopupVCPUMemcache; id++ {
		if id.String() == "unknown_hypercall" {
			t.Errorf("hypercall %d has no name", id)
		}
	}
}
