package hyp

import (
	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
)

// hostShareHyp implements __pkvm_host_share_hyp (paper §4.1, Fig 3-4):
// the host grants the hypervisor read/write access to one of its
// pages, e.g. to pass hypercall struct arguments through it.
func (hv *Hypervisor) hostShareHyp(cpu int, pfn arch.PFN) Errno {
	phys := pfn.Phys()
	ipa := arch.IPA(phys) // host stage 1 is an identity map
	hypVA := HypVA(phys)

	if !hv.Mem.InRAM(phys) {
		return EINVAL
	}

	hv.lockHost(cpu)
	hv.lockHyp(cpu)
	defer func() {
		hv.unlockHyp(cpu)
		hv.unlockHost(cpu)
	}()
	return hv.doShareHyp(ipa, hypVA, phys)
}

// doShareHyp is the do_share of Fig 4, with its three walks: check the
// host page state, install the host's shared mapping, install the
// hypervisor's borrowed mapping.
//
//ghost:requires lock=host lock=hyp
func (hv *Hypervisor) doShareHyp(ipa arch.IPA, hypVA arch.VirtAddr, phys arch.PhysAddr) Errno {
	// Walk 1: __check_page_state_visitor — the page must be owned
	// exclusively by the host.
	if !hv.Inj.Enabled(faults.BugShareSkipStateCheck) {
		if ret := hv.hostCheckState(ipa, arch.PageSize, arch.StateOwned); ret != OK {
			if hv.Inj.Enabled(faults.BugWrongReturnValue) {
				return OK // report success on the failure path
			}
			return ret
		}
		if ret := hv.hypCheckUnmapped(hypVA, arch.PageSize); ret != OK {
			return ret
		}
	}

	// Walk 2: host_initiate_share — identity mapping marked
	// shared-owned in the host's table.
	if ret := hv.hostIDMap(ipa, arch.PageSize, arch.StateSharedOwned); ret != OK {
		return ret
	}

	// Walk 3: hyp_complete_share — borrowed mapping in the
	// hypervisor's own table.
	attrs := hypAttrs(arch.StateSharedBorrowed, arch.MemNormal)
	if hv.Inj.Enabled(faults.BugShareWrongPerms) {
		attrs.Perms = arch.PermRWX // executable borrowed mapping
	}
	if err := hv.hypPGT.Map(uint64(hypVA), arch.PageSize, phys, attrs, true); err != nil {
		return errnoOf(err)
	}
	return OK
}

// hostUnshareHyp implements __pkvm_host_unshare_hyp: the host revokes
// a previous share, returning the page to exclusive host ownership.
func (hv *Hypervisor) hostUnshareHyp(cpu int, pfn arch.PFN) Errno {
	phys := pfn.Phys()
	ipa := arch.IPA(phys)
	hypVA := HypVA(phys)

	if !hv.Mem.InRAM(phys) {
		return EINVAL
	}

	hv.lockHost(cpu)
	hv.lockHyp(cpu)
	// Deferred (not inline) unlocks: doUnshareHyp can reach hypPanic
	// on a host/hyp state mismatch, and the panic must not leak the
	// locks past the trap handler's recovery point.
	defer func() {
		hv.unlockHyp(cpu)
		hv.unlockHost(cpu)
	}()
	return hv.doUnshareHyp(cpu, ipa, hypVA)
}

// doUnshareHyp reverses doShareHyp's three walks; a host/hyp state
// mismatch is an internal invariant violation and panics.
//
//ghost:requires lock=host lock=hyp
func (hv *Hypervisor) doUnshareHyp(cpu int, ipa arch.IPA, hypVA arch.VirtAddr) Errno {
	if ret := hv.hostCheckState(ipa, arch.PageSize, arch.StateSharedOwned); ret != OK {
		return ret
	}
	if ret := hv.hypCheckState(hypVA, arch.PageSize, arch.StateSharedBorrowed); ret != OK {
		// Host and hypervisor tables disagree about the share: a
		// broken internal invariant, not a host error.
		hv.hypPanic(cpu, "unshare: host/hyp share state mismatch at %#x", uint64(ipa))
	}
	// The host entry flips SharedOwned→Owned: a live translation
	// changes, so the mutation's break-before-make must invalidate any
	// cached walk of it. The injected bug suppresses exactly that TLBI
	// (both flags run under the host lock, like the callback).
	if hv.Inj.Enabled(faults.BugUnshareSkipTLBI) {
		hv.hostTLBIOff = true
	}
	ret := hv.hostIDMap(ipa, arch.PageSize, arch.StateOwned)
	hv.hostTLBIOff = false
	if ret != OK {
		return ret
	}
	if !hv.Inj.Enabled(faults.BugUnshareLeaveMapping) {
		if err := hv.hypPGT.Unmap(uint64(hypVA), arch.PageSize); err != nil {
			return errnoOf(err)
		}
	}
	return OK
}

// MaxDonate bounds a single host_donate_hyp request.
const MaxDonate = 64

// MaxShareRange bounds a single host_share_hyp_range request.
const MaxShareRange = 32

// hostShareHypRange shares a contiguous run of host pages with the
// hypervisor, one page per locking phase: the host and hyp locks are
// taken and released for every page, so other hypercalls interleave
// between phases. This is the "executes in phases, releasing and
// retaking locks" style the paper's monolithic pre/post checking
// cannot handle; the ghost machinery checks it per lock session
// instead (the transactional instrumentation of the extension).
//
// Failure mid-range leaves the earlier pages shared, like the
// partial-success semantics of the real phased hypercalls.
func (hv *Hypervisor) hostShareHypRange(cpu int, pfn arch.PFN, nr uint64) Errno {
	if nr == 0 || nr > MaxShareRange {
		return EINVAL
	}
	for i := uint64(0); i < nr; i++ {
		// One locking phase per page: hostShareHyp takes and releases
		// both locks, so other hypercalls interleave between phases.
		if ret := hv.hostShareHyp(cpu, pfn+arch.PFN(i)); ret != OK {
			if hv.Inj.Enabled(faults.BugShareRangeBadStop) {
				return OK // reports success despite stopping early
			}
			return ret
		}
	}
	return OK
}

// hostDonateHyp implements __pkvm_host_donate_hyp: the host
// transfers ownership of nr contiguous pages to the hypervisor
// outright (used to grow the hypervisor's working memory).
func (hv *Hypervisor) hostDonateHyp(cpu int, pfn arch.PFN, nr uint64) Errno {
	phys := pfn.Phys()
	size := nr << arch.PageShift
	if nr == 0 || nr > MaxDonate || !hv.Mem.InRAM(phys) ||
		!hv.Mem.InRAM(phys+arch.PhysAddr(size)-1) {
		return EINVAL
	}
	ipa := arch.IPA(phys)

	hv.lockHost(cpu)
	hv.lockHyp(cpu)
	defer func() {
		hv.unlockHyp(cpu)
		hv.unlockHost(cpu)
	}()

	if ret := hv.hostCheckState(ipa, size, arch.StateOwned); ret != OK {
		return ret
	}
	if ret := hv.hypCheckUnmapped(HypVA(phys), size); ret != OK {
		return ret
	}
	if !hv.Inj.Enabled(faults.BugDonateKeepHostMapping) {
		if ret := hv.hostSetOwner(ipa, size, IDHyp); ret != OK {
			return ret
		}
	}
	attrs := hypAttrs(arch.StateOwned, arch.MemNormal)
	if err := hv.hypPGT.Map(uint64(HypVA(phys)), size, phys, attrs, true); err != nil {
		return errnoOf(err)
	}
	return OK
}

// hostReclaimPage implements __pkvm_host_reclaim_page: after a VM is
// torn down, the host takes back one of the pages that had been
// donated to it. The hypervisor scrubs the page before the host can
// see it.
func (hv *Hypervisor) hostReclaimPage(cpu int, pfn arch.PFN) Errno {
	phys := pfn.Phys()
	ipa := arch.IPA(phys)

	hv.lockVMs(cpu)
	hv.lockHost(cpu)
	defer func() {
		hv.unlockHost(cpu)
		hv.unlockVMs(cpu)
	}()

	if !hv.reclaimable[pfn] {
		return EPERM
	}
	hv.clearPage(phys) // scrub guest data
	if !hv.Inj.Enabled(faults.BugReclaimSkipOwnerClear) {
		if ret := hv.hostSetOwner(ipa, arch.PageSize, 0); ret != OK {
			return ret
		}
	}
	delete(hv.reclaimable, pfn)
	return OK
}

// handleHostMemAbort is the host stage 2 fault handler (paper §2):
// pKVM does not map all host memory at initialisation, but fills the
// host's table in lazily on first access — sometimes with a whole
// block. Faults on memory the host does not own are reflected back
// into the host as an injected abort.
func (hv *Hypervisor) handleHostMemAbort(cpu int) {
	fault := hv.CPUs[cpu].Fault
	ipa := arch.IPA(arch.AlignDown(uint64(fault.Addr)))
	pc := hv.percpu[cpu]
	pc.LastAbortInjected = false

	hv.lockHost(cpu)
	defer hv.unlockHost(cpu)

	pte, level := hv.hostPGT.GetLeaf(uint64(ipa))
	own := hostOwnership(pte, level)
	switch {
	case own.mapped:
		// Spurious fault: another CPU mapped the page between the
		// fault and taking the lock, or the host retried a
		// permission fault. Robust handling returns and lets the
		// host retry; the paper's bug 4 was a panic here.
		if hv.Inj.Enabled(faults.BugHostFaultRetry) {
			hv.hypPanic(cpu, "host abort: entry for %#x already valid", uint64(ipa))
		}
		abortSpurious.Inc()
		return
	case own.owner != 0:
		// Not the host's memory: reflect the fault into the host.
		pc.LastAbortInjected = true
		abortReflected.Inc()
		return
	}

	pa := arch.PhysAddr(ipa)
	if !hv.Mem.InRAM(pa) && !hv.Mem.InMMIO(pa) {
		pc.LastAbortInjected = true
		abortReflected.Inc()
		return
	}

	state := arch.StateOwned
	if hv.Inj.Enabled(faults.BugMapDemandWrongState) {
		state = arch.StateSharedOwned
	}

	// Map the largest block whose containing entry is entirely absent
	// and entirely DRAM — 1GB on big-memory devices, else 2MB, else a
	// single page. The host specification is deliberately loose here
	// (paper §3.1): any legal host mapping is acceptable on exit.
	for _, blockLevel := range []int{1, 2} {
		if level > blockLevel {
			continue // the containing entry at this level is not free
		}
		size := arch.LevelSize(blockLevel)
		base := uint64(ipa) &^ (size - 1)
		if hv.Mem.InRAM(arch.PhysAddr(base)) && hv.Mem.InRAM(arch.PhysAddr(base+size-1)) {
			if ret := hv.hostIDMap(arch.IPA(base), size, state); ret != OK {
				hv.hypPanic(cpu, "host abort: block idmap failed: %v", ret)
			}
			abortDemandMapped.Inc()
			return
		}
	}
	if ret := hv.hostIDMap(ipa, arch.PageSize, state); ret != OK {
		hv.hypPanic(cpu, "host abort: idmap failed: %v", ret)
	}
	abortDemandMapped.Inc()
}
