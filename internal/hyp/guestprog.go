package hyp

import (
	"fmt"

	"ghostspec/internal/arch"
)

// A tiny guest instruction set: enough for guests that compute, touch
// memory (faulting realistically, with restart semantics), and talk to
// the hypervisor — the simulation's equivalent of running a real guest
// image instead of a scripted event queue.
//
// The guest's architectural state is its register file (the saved
// GuestRegs context) with the program counter held in register PCReg;
// load/put context switching therefore preserves the whole machine
// with no extra plumbing, exactly as hardware does.

// PCReg is the register index holding the guest program counter (an
// instruction index).
const PCReg = arch.NumGPRs - 1

// Op is a guest instruction opcode.
type Op uint8

const (
	// OpMovi: reg[Dst] = Imm.
	OpMovi Op = iota
	// OpAdd: reg[Dst] += reg[Src].
	OpAdd
	// OpLoad: reg[Dst] = mem[reg[Src] + Imm] (guest IPA); faults to
	// the host if unmapped, restarting here after the retry.
	OpLoad
	// OpStore: mem[reg[Src] + Imm] = reg[Dst]; may fault likewise.
	OpStore
	// OpBne: if reg[Dst] != reg[Src], branch to instruction Imm.
	OpBne
	// OpShareHost: guest_share_host hypercall for IPA reg[Src] + Imm;
	// errno lands in guest r0 and the run exits to the host.
	OpShareHost
	// OpUnshareHost: the reverse hypercall.
	OpUnshareHost
	// OpYield: exit to the host, continuing here next run.
	OpYield
	// OpHalt: exit to the host forever.
	OpHalt
)

func (o Op) String() string {
	switch o {
	case OpMovi:
		return "movi"
	case OpAdd:
		return "add"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBne:
		return "bne"
	case OpShareHost:
		return "share-host"
	case OpUnshareHost:
		return "unshare-host"
	case OpYield:
		return "yield"
	case OpHalt:
		return "halt"
	}
	return "?"
}

// Insn is one guest instruction.
type Insn struct {
	Op       Op
	Dst, Src int
	Imm      uint64
}

func (i Insn) String() string {
	return fmt.Sprintf("%s r%d, r%d, %#x", i.Op, i.Dst, i.Src, i.Imm)
}

// RunBudget is the maximum instructions one vcpu_run executes before
// the guest is preempted with a yield exit (the scheduler tick).
const RunBudget = 256

// LoadGuestProgram installs a program on a vCPU, replacing any
// scripted event queue. Test-harness machinery (the guest image);
// callers must not race it with a running vCPU.
func (hv *Hypervisor) LoadGuestProgram(handle Handle, idx int, prog []Insn) bool {
	hv.vmsLock.Lock()
	defer hv.vmsLock.Unlock()
	vm := hv.lookupVM(handle)
	if vm == nil || idx < 0 || idx >= vm.NrVCPUs {
		return false
	}
	vm.VCPUs[idx].Program = append([]Insn(nil), prog...)
	return true
}

// runProgram interprets the guest program until an exit event: a
// stage 2 fault (PC not advanced — hardware restart semantics), a
// guest hypercall, a yield/halt, or budget exhaustion. It returns the
// host-visible exit and fires the GuestExit instrumentation with the
// event, exactly like the scripted path — successful loads, stores,
// and arithmetic execute entirely "at EL1" and are invisible to EL2.
func (hv *Hypervisor) runProgram(cpu int, vm *VM, vcpu *VCPU) int64 {
	regs := &hv.CPUs[cpu].GuestRegs
	hostRegs := &hv.CPUs[cpu].HostRegs

	for steps := 0; steps < RunBudget; steps++ {
		pc := regs[PCReg]
		if pc >= uint64(len(vcpu.Program)) {
			// Fell off the end: a halted guest.
			hv.instr.GuestExit(cpu, vm.Handle, vcpu.Idx, GuestOp{Kind: GuestYield})
			return RunExitYield
		}
		in := vcpu.Program[pc]
		switch in.Op {
		case OpMovi:
			regs[in.Dst] = in.Imm
			regs[PCReg] = pc + 1

		case OpAdd:
			regs[in.Dst] += regs[in.Src]
			regs[PCReg] = pc + 1

		case OpLoad, OpStore:
			ipa := arch.IPA(regs[in.Src] + in.Imm)
			write := in.Op == OpStore
			res, fault := hv.translateGuest(cpu, vm, ipa, arch.Access{Write: write})
			if fault != nil {
				// Stage 2 abort: exit to the host, PC unchanged so
				// the retried run restarts this instruction.
				hv.instr.GuestExit(cpu, vm.Handle, vcpu.Idx,
					GuestOp{Kind: GuestAccess, IPA: ipa, Write: write})
				hostRegs[2] = uint64(ipa)
				hostRegs[3] = boolReg(write)
				return RunExitMemAbort
			}
			if write {
				hv.Mem.Write64(res.OutputAddr&^7, regs[in.Dst])
			} else {
				regs[in.Dst] = hv.Mem.Read64(res.OutputAddr &^ 7)
			}
			regs[PCReg] = pc + 1

		case OpBne:
			if regs[in.Dst] != regs[in.Src] {
				regs[PCReg] = in.Imm
			} else {
				regs[PCReg] = pc + 1
			}

		case OpShareHost:
			ipa := arch.IPA(regs[in.Src] + in.Imm)
			hv.instr.GuestExit(cpu, vm.Handle, vcpu.Idx, GuestOp{Kind: GuestShareHost, IPA: ipa})
			regs[0] = hv.guestShareHost(cpu, vm, ipa).Reg()
			regs[PCReg] = pc + 1
			return RunExitYield

		case OpUnshareHost:
			ipa := arch.IPA(regs[in.Src] + in.Imm)
			hv.instr.GuestExit(cpu, vm.Handle, vcpu.Idx, GuestOp{Kind: GuestUnshareHost, IPA: ipa})
			regs[0] = hv.guestUnshareHost(cpu, vm, ipa).Reg()
			regs[PCReg] = pc + 1
			return RunExitYield

		case OpYield:
			regs[PCReg] = pc + 1
			hv.instr.GuestExit(cpu, vm.Handle, vcpu.Idx, GuestOp{Kind: GuestYield})
			return RunExitYield

		case OpHalt:
			// PC stays on the halt: every future run yields here.
			hv.instr.GuestExit(cpu, vm.Handle, vcpu.Idx, GuestOp{Kind: GuestYield})
			return RunExitYield

		default:
			hv.hypPanic(cpu, "guest program: invalid opcode %d at pc %d", in.Op, pc)
		}
	}
	// Preempted: scheduler tick.
	hv.instr.GuestExit(cpu, vm.Handle, vcpu.Idx, GuestOp{Kind: GuestYield})
	return RunExitYield
}
