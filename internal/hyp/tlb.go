package hyp

import (
	"ghostspec/internal/arch"
)

// This file bridges the pgtable break-before-make notifications to the
// system's software TLB (tagging each with the owning component's
// VMID) and provides the hardware-translation helpers the simulated
// accesses go through. TLBI points, per pKVM's maintenance discipline:
//
//   - host_share_hyp / host_unshare_hyp / host_reclaim_page /
//     guest_share / guest_unshare: the host stage 2 entry changes
//     attributes or becomes an annotation — the pgtable mutation emits
//     the TLBI between break and make (hostTLBI).
//   - host_donate_hyp and the hyp-side map/unmap of share/unshare: the
//     hyp stage 1 changes (hypTLBI).
//   - guest stage 2 mutations (hostMapGuest, guestShareHost,
//     guestUnshareHost): guestTLBI with the VM's own VMID.
//   - teardown_vm: the whole stage 2 is destroyed without per-entry
//     unmaps, so teardownVM issues the by-VMID invalidation itself
//     (TLBI VMALLS12E1IS) under the guest lock.
//
// BugUnshareSkipTLBI suppresses hostTLBI inside the unshare paths'
// host-table mutation (hostTLBIOff), modelling the canonical
// forgotten-maintenance bug: the entry is rewritten but a cached
// translation of it survives, which the ghost oracle's coherence check
// reports as FailStaleTLB at the unshare's own host-lock release.

// TLB returns the system's software TLB, nil when disabled. The ghost
// oracle reads it for the stale-entry coherence check.
func (hv *Hypervisor) TLB() *arch.TLB { return hv.tlb }

// VMIDForHandle returns the VMID of the guest with the given handle
// (VMIDHyp for an out-of-range handle, which tags nothing a guest
// uses). Pure slot arithmetic: usable without any lock.
func VMIDForHandle(h Handle) arch.VMID {
	slot := h.slot(MaxVMs)
	if slot < 0 {
		return VMIDHyp
	}
	return VMIDForSlot(slot)
}

// hostTLBI invalidates host stage 2 translations for one
// break-before-make sequence, unless the injected skipped-TLBI bug has
// opened its suppression window.
//
//ghost:requires lock=host
func (hv *Hypervisor) hostTLBI(ia, size uint64) {
	if hv.hostTLBIOff {
		return
	}
	hv.tlb.InvalidateRange(VMIDHost, ia, size)
}

// hypTLBI invalidates hypervisor stage 1 translations for one
// break-before-make sequence.
//
//ghost:requires lock=hyp
func (hv *Hypervisor) hypTLBI(ia, size uint64) {
	hv.tlb.InvalidateRange(VMIDHyp, ia, size)
}

// guestTLBI builds the invalidation callback for one guest's stage 2,
// tagged with its VMID. The callback fires inside guest-table
// mutations, which hold the guest lock.
func (hv *Hypervisor) guestTLBI(vmid arch.VMID) func(ia, size uint64) {
	return func(ia, size uint64) {
		hv.tlb.InvalidateRange(vmid, ia, size)
	}
}

// TranslateHost is the hardware's host stage 2 translation for an
// access on cpu: through the TLB when enabled, a direct walk
// otherwise. Like real host loads and stores it takes no lock — the
// MMU does not serialize against the hypervisor — which is exactly
// what makes a skipped TLBI observable.
func (hv *Hypervisor) TranslateHost(cpu int, ipa arch.IPA, acc arch.Access) (arch.WalkResult, *arch.Fault) {
	if hv.tlb == nil {
		return arch.Walk(hv.Mem, hv.hostPGT.Root(), uint64(ipa), acc)
	}
	return hv.tlb.Walk(cpu, hv.hostPGT.Root(), arch.Stage2, VMIDHost, uint64(ipa), acc)
}

// translateGuest is the hardware's guest stage 2 translation for an
// access by the vCPU running on cpu.
func (hv *Hypervisor) translateGuest(cpu int, vm *VM, ipa arch.IPA, acc arch.Access) (arch.WalkResult, *arch.Fault) {
	if hv.tlb == nil {
		return arch.Walk(hv.Mem, vm.PGT.Root(), uint64(ipa), acc)
	}
	return hv.tlb.Walk(cpu, vm.PGT.Root(), arch.Stage2, vm.VMID, uint64(ipa), acc)
}
