package hyp

import (
	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
)

// QueueGuestOp scripts the next behaviour of a vCPU — the simulation's
// stand-in for the guest image. It is test-harness machinery, not part
// of the hypercall API; callers must not race it with a running vCPU.
func (hv *Hypervisor) QueueGuestOp(handle Handle, idx int, op GuestOp) bool {
	hv.vmsLock.Lock()
	defer hv.vmsLock.Unlock()
	vm := hv.lookupVM(handle)
	if vm == nil || idx < 0 || idx >= vm.NrVCPUs {
		return false
	}
	vm.VCPUs[idx].pending = append(vm.VCPUs[idx].pending, op)
	return true
}

// vcpuRun implements __pkvm_vcpu_run: context-switches to the loaded
// vCPU, lets the guest execute its next scripted event, handles any
// resulting guest exception at EL2, and returns to the host with an
// exit code in x1 (and fault detail in x2/x3).
func (hv *Hypervisor) vcpuRun(cpu int) int64 {
	pc := hv.percpu[cpu]
	if pc.LoadedVM == 0 {
		return int64(ENOENT)
	}
	// The vCPU is owned by this physical CPU: no lock needed to reach
	// it (paper §3.1). The VM-table lock is only needed to resolve the
	// handle to the metadata pointer.
	hv.lockVMs(cpu)
	vm := hv.lookupVM(pc.LoadedVM)
	hv.unlockVMs(cpu)
	if vm == nil {
		hv.hypPanic(cpu, "vcpu_run: loaded VM %v vanished", pc.LoadedVM)
	}
	vcpu := vm.VCPUs[pc.LoadedVCPU]

	// A vCPU with a program is a real (simulated) guest: interpret it
	// until the next host-visible event.
	if vcpu.Program != nil {
		return hv.runProgram(cpu, vm, vcpu)
	}

	// Otherwise consume the next scripted event. An empty script is a
	// quiescent guest that just yields.
	op := GuestOp{Kind: GuestYield}
	if len(vcpu.pending) > 0 {
		op = vcpu.pending[0]
		vcpu.pending = vcpu.pending[1:]
	}
	hv.instr.GuestExit(cpu, vm.Handle, vcpu.Idx, op)

	regs := &hv.CPUs[cpu].HostRegs
	switch op.Kind {
	case GuestYield:
		return RunExitYield

	case GuestAccess:
		res, fault := hv.translateGuest(cpu, vm, op.IPA, arch.Access{Write: op.Write})
		if fault != nil {
			// Guest stage 2 abort: exit to the host with the fault
			// information (the virtio notification path).
			regs[2] = uint64(op.IPA)
			regs[3] = boolReg(op.Write)
			return RunExitMemAbort
		}
		if op.Write {
			hv.Mem.Write64(res.OutputAddr&^7, op.Value)
		} else {
			hv.CPUs[cpu].GuestRegs[0] = hv.Mem.Read64(res.OutputAddr &^ 7)
		}
		return RunExitYield

	case GuestShareHost:
		hv.CPUs[cpu].GuestRegs[0] = hv.guestShareHost(cpu, vm, op.IPA).Reg()
		return RunExitYield

	case GuestUnshareHost:
		hv.CPUs[cpu].GuestRegs[0] = hv.guestUnshareHost(cpu, vm, op.IPA).Reg()
		return RunExitYield
	}
	return int64(EINVAL)
}

func boolReg(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// guestShareHost handles the guest_share_host guest hypercall: the
// guest lends one of its own pages back to the host (e.g. a virtio
// ring). The page stays guest-owned, marked shared, and the host gains
// a borrowed mapping.
func (hv *Hypervisor) guestShareHost(cpu int, vm *VM, ipa arch.IPA) Errno {
	if !arch.PageAligned(uint64(ipa)) {
		return EINVAL
	}
	hv.lockGuest(cpu, vm)
	hv.lockHost(cpu)
	defer func() {
		hv.unlockHost(cpu)
		hv.unlockGuest(cpu, vm)
	}()

	pte, level := vm.PGT.GetLeaf(uint64(ipa))
	if !pte.Valid() || pte.Attrs().State != arch.StateOwned {
		return EPERM
	}
	phys := pte.OutputAddr(level) + arch.PhysAddr(uint64(ipa)&(arch.LevelSize(level)-1))

	// Guest side: same mapping, now marked shared-owned.
	gAttrs := pte.Attrs()
	gAttrs.State = arch.StateSharedOwned
	if err := vm.PGT.Map(uint64(ipa), arch.PageSize, phys, gAttrs, true); err != nil {
		return errnoOf(err)
	}
	// Host side: the annotation for this frame becomes a borrowed
	// mapping.
	hAttrs := hv.hostDefaultAttrs(phys, arch.StateSharedBorrowed)
	if err := hv.hostPGT.Map(uint64(phys), arch.PageSize, phys, hAttrs, true); err != nil {
		return errnoOf(err)
	}
	return OK
}

// guestUnshareHost reverses guestShareHost: the borrowed host mapping
// reverts to a guest-owner annotation and the guest page returns to
// exclusive ownership.
func (hv *Hypervisor) guestUnshareHost(cpu int, vm *VM, ipa arch.IPA) Errno {
	if !arch.PageAligned(uint64(ipa)) {
		return EINVAL
	}
	hv.lockGuest(cpu, vm)
	hv.lockHost(cpu)
	defer func() {
		hv.unlockHost(cpu)
		hv.unlockGuest(cpu, vm)
	}()

	pte, level := vm.PGT.GetLeaf(uint64(ipa))
	if !pte.Valid() || pte.Attrs().State != arch.StateSharedOwned {
		return EPERM
	}
	phys := pte.OutputAddr(level) + arch.PhysAddr(uint64(ipa)&(arch.LevelSize(level)-1))

	hpte, hlevel := hv.hostPGT.GetLeaf(uint64(phys))
	if !hpte.Valid() || hpte.Attrs().State != arch.StateSharedBorrowed {
		hv.hypPanic(cpu, "guest_unshare: host side of share at %#x inconsistent", uint64(phys))
	}
	_ = hlevel

	gAttrs := pte.Attrs()
	gAttrs.State = arch.StateOwned
	if err := vm.PGT.Map(uint64(ipa), arch.PageSize, phys, gAttrs, true); err != nil {
		return errnoOf(err)
	}
	slot := vm.Handle.slot(MaxVMs)
	// The host's borrowed mapping becomes an annotation: a live
	// translation disappears, the other unshare path whose
	// break-before-make TLBI the injected bug suppresses.
	if hv.Inj.Enabled(faults.BugUnshareSkipTLBI) {
		hv.hostTLBIOff = true
	}
	ret := hv.hostSetOwner(arch.IPA(phys), arch.PageSize, GuestOwner(slot))
	hv.hostTLBIOff = false
	if ret != OK {
		return ret
	}
	return OK
}
