package hyp

import "fmt"

// Errno is the kernel-style return code of a hypercall, returned to
// the host in x1 (0 on success, negative on failure).
type Errno int64

// The errno values the hypercall API uses, with kernel numbering.
const (
	OK     Errno = 0
	EPERM  Errno = -1  // caller does not own the resource
	ENOENT Errno = -2  // no such VM / vCPU / page
	EBUSY  Errno = -16 // resource is loaded or in use
	EEXIST Errno = -17 // already present
	EINVAL Errno = -22 // malformed arguments
	ENOMEM Errno = -12 // allocation failure (loosely specified)
	ENOSYS Errno = -38 // unknown hypercall
	EAGAIN Errno = -11 // transient, retry
	ERANGE Errno = -34 // address outside the permitted range
	ENOSPC Errno = -28 // table full
)

func (e Errno) Error() string { return e.String() }

func (e Errno) String() string {
	switch e {
	case OK:
		return "OK"
	case EPERM:
		return "-EPERM"
	case ENOENT:
		return "-ENOENT"
	case EBUSY:
		return "-EBUSY"
	case EEXIST:
		return "-EEXIST"
	case EINVAL:
		return "-EINVAL"
	case ENOMEM:
		return "-ENOMEM"
	case ENOSYS:
		return "-ENOSYS"
	case EAGAIN:
		return "-EAGAIN"
	case ERANGE:
		return "-ERANGE"
	case ENOSPC:
		return "-ENOSPC"
	}
	return fmt.Sprintf("errno(%d)", int64(e))
}

// Reg returns the register encoding of the errno (two's complement in
// a uint64).
func (e Errno) Reg() uint64 { return uint64(int64(e)) }

// ErrnoFromReg decodes a register value back into an Errno.
func ErrnoFromReg(v uint64) Errno { return Errno(int64(v)) }

// RunExitString renders a vcpu_run exit code symbolically for
// telemetry labels and failure reports; negative codes are errnos.
func RunExitString(code int64) string {
	switch code {
	case RunExitYield:
		return "yield"
	case RunExitMemAbort:
		return "mem-abort"
	}
	if code < 0 {
		return Errno(code).String()
	}
	return "run-exit(?)"
}

// PanicError is returned by HandleTrap when the hypervisor hit an
// internal inconsistency that would panic a real pKVM (taking the
// whole machine with it). The test harness recovers it so a campaign
// can observe and continue.
type PanicError struct {
	CPU int
	Msg string
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("hypervisor panic on cpu %d: %s", p.CPU, p.Msg)
}
