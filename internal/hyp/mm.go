package hyp

import (
	"errors"
	"fmt"

	"ghostspec/internal/arch"
	"ghostspec/internal/pgtable"
	"ghostspec/internal/telemetry"
)

// pageOwnership is the hypervisor's decoded view of who holds a page
// according to a host stage 2 entry (pKVM's host_get_page_state).
type pageOwnership struct {
	// owner is 0 for the host, IDHyp, or a guest owner ID.
	owner uint8
	// state is the share state when the entry is valid; StateOwned
	// for invalid unannotated entries (the host's default ownership).
	state arch.PageState
	// mapped reports whether the entry is a valid mapping.
	mapped bool
}

// hostOwnership decodes a host stage 2 leaf. The host logically owns
// everything that is not annotated away: an invalid unannotated entry
// is host-owned, exclusive, simply not faulted in yet.
func hostOwnership(pte arch.PTE, level int) pageOwnership {
	switch pte.Kind(level) {
	case arch.EKAnnotated:
		return pageOwnership{owner: pte.OwnerID(), state: arch.StateOwned}
	case arch.EKBlock, arch.EKPage:
		return pageOwnership{owner: 0, state: pte.Attrs().State, mapped: true}
	default:
		return pageOwnership{owner: 0, state: arch.StateOwned}
	}
}

// hostCheckState walks the host stage 2 over [ipa, ipa+size) and
// checks every page is host-owned with the wanted share state — the
// paper's __check_page_state_visitor walk from do_share (Fig 4).
//
//ghost:requires lock=host
func (hv *Hypervisor) hostCheckState(ipa arch.IPA, size uint64, want arch.PageState) Errno {
	if !telemetry.Disabled() {
		stateChecks.Inc()
	}
	err := hv.hostPGT.Walk(uint64(ipa), size, &pgtable.Visitor{
		Flags: pgtable.VisitLeaf,
		Fn: func(ctx *pgtable.VisitCtx) error {
			own := hostOwnership(ctx.PTE, ctx.Level)
			if own.owner != 0 || own.state != want {
				return EPERM
			}
			return nil
		},
	})
	if err == nil {
		return OK
	}
	if e, ok := err.(Errno); ok {
		return e
	}
	return EINVAL
}

// hostDefaultAttrs returns the attributes a host mapping gets: normal
// RWX for DRAM, device RW for MMIO (the two-point policy of §4.2
// step 4).
func (hv *Hypervisor) hostDefaultAttrs(pa arch.PhysAddr, state arch.PageState) arch.Attrs {
	if hv.Mem.InRAM(pa) {
		return arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: state}
	}
	return arch.Attrs{Perms: arch.PermRW, Mem: arch.MemDevice, State: state}
}

// hypAttrs returns the attributes for the hypervisor's own stage 1
// mappings of memory with the given share state: read-write,
// never executable (the paper's diff shows shared pages as "SB RW- M").
func hypAttrs(state arch.PageState, mem arch.MemType) arch.Attrs {
	return arch.Attrs{Perms: arch.PermRW, Mem: mem, State: state}
}

// hostIDMap force-installs an identity mapping over [ipa, ipa+size)
// in the host stage 2 with the given share state (pKVM's
// host_stage2_idmap_locked). Caller holds the host lock.
//
//ghost:requires lock=host
func (hv *Hypervisor) hostIDMap(ipa arch.IPA, size uint64, state arch.PageState) Errno {
	attrs := hv.hostDefaultAttrs(arch.PhysAddr(ipa), state)
	if err := hv.hostPGT.Map(uint64(ipa), size, arch.PhysAddr(ipa), attrs, true); err != nil {
		return errnoOf(err)
	}
	return OK
}

// hostSetOwner force-annotates [ipa, ipa+size) in the host stage 2
// with an owner (pKVM's host_stage2_set_owner_locked); owner 0 gives
// the range back to the host as unmapped default-owned memory.
//
//ghost:requires lock=host
func (hv *Hypervisor) hostSetOwner(ipa arch.IPA, size uint64, owner uint8) Errno {
	if err := hv.hostPGT.Annotate(uint64(ipa), size, owner); err != nil {
		return errnoOf(err)
	}
	return OK
}

// hypCheckUnmapped verifies the hypervisor's own stage 1 has no
// mapping over [va, va+size); sharing into an occupied hyp range is an
// implementation invariant violation.
//
//ghost:requires lock=hyp
func (hv *Hypervisor) hypCheckUnmapped(va arch.VirtAddr, size uint64) Errno {
	if !telemetry.Disabled() {
		stateChecks.Inc()
	}
	err := hv.hypPGT.Walk(uint64(va), size, &pgtable.Visitor{
		Flags: pgtable.VisitLeaf,
		Fn: func(ctx *pgtable.VisitCtx) error {
			if ctx.PTE.Valid() {
				return EEXIST
			}
			return nil
		},
	})
	if err == nil {
		return OK
	}
	if e, ok := err.(Errno); ok {
		return e
	}
	return EINVAL
}

// hypCheckState verifies every page of the hypervisor stage 1 range
// is mapped with the given share state.
//
//ghost:requires lock=hyp
func (hv *Hypervisor) hypCheckState(va arch.VirtAddr, size uint64, want arch.PageState) Errno {
	if !telemetry.Disabled() {
		stateChecks.Inc()
	}
	err := hv.hypPGT.Walk(uint64(va), size, &pgtable.Visitor{
		Flags: pgtable.VisitLeaf,
		Fn: func(ctx *pgtable.VisitCtx) error {
			if !ctx.PTE.Valid() || ctx.PTE.Attrs().State != want {
				return EPERM
			}
			return nil
		},
	})
	if err == nil {
		return OK
	}
	if e, ok := err.(Errno); ok {
		return e
	}
	return EINVAL
}

// errnoOf maps pgtable errors to the hypercall errno space.
func errnoOf(err error) Errno {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, pgtable.ErrNoMem):
		return ENOMEM
	case errors.Is(err, pgtable.ErrExists):
		return EEXIST
	case errors.Is(err, pgtable.ErrRange):
		return ERANGE
	default:
		return EINVAL
	}
}

// readOnceHost performs a READ_ONCE of host-owned memory: the value is
// under concurrent host control, so the instrumentation records it as
// an environment parameter of the specification (paper §4.3).
//
//ghost:requires lock=host
func (hv *Hypervisor) readOnceHost(cpu int, pa arch.PhysAddr) uint64 {
	if !telemetry.Disabled() {
		readOnces.Inc()
	}
	v := hv.Mem.Read64(pa)
	hv.instr.ReadOnce(cpu, pa, v)
	return v
}

// clearPage zeroes PageSize bytes starting at addr, which must be
// 8-byte aligned but — crucially for the memcache alignment bug — not
// necessarily page aligned: an unaligned addr zeroes the tail of one
// frame and the head of the next.
func (hv *Hypervisor) clearPage(addr arch.PhysAddr) {
	hv.Mem.ZeroWords(addr, arch.PageSize/8)
}

// hypPanic raises an internal hypervisor panic: unrecoverable on real
// hardware, recovered by HandleTrap for the test harness.
func (hv *Hypervisor) hypPanic(cpu int, format string, args ...any) {
	if !telemetry.Disabled() {
		hypPanics.Inc()
	}
	msg := fmt.Sprintf(format, args...)
	hv.instr.HypPanic(cpu, msg)
	panic(&PanicError{CPU: cpu, Msg: msg})
}
