package hyp

import (
	"fmt"

	"ghostspec/internal/arch"
	"ghostspec/internal/mem"
	"ghostspec/internal/pgtable"
	"ghostspec/internal/spinlock"
)

// Handle identifies a VM to the host. Handles start at HandleOffset
// so that stray small integers are never valid handles.
type Handle uint32

// HandleOffset is the value of the first VM slot's handle.
const HandleOffset Handle = 0x1000

func (h Handle) String() string { return fmt.Sprintf("vm%#x", uint32(h)) }

// slot converts a handle to a VM-table slot index, or -1 if out of
// range.
func (h Handle) slot(max int) int {
	if h < HandleOffset || int(h-HandleOffset) >= max {
		return -1
	}
	return int(h - HandleOffset)
}

// Limits on the VM table, matching the small scale of the AVF use
// case.
const (
	// MaxVMs is the number of VM slots.
	MaxVMs = 64
	// MaxVCPUs is the per-VM vCPU limit.
	MaxVCPUs = 8
)

// VMState is the lifecycle state of a VM slot.
type VMState uint8

const (
	// VMNone marks a free slot.
	VMNone VMState = iota
	// VMActive marks a created VM.
	VMActive
	// VMTeardown marks a destroyed VM whose pages the host has not
	// yet fully reclaimed.
	VMTeardown
)

func (s VMState) String() string {
	switch s {
	case VMNone:
		return "none"
	case VMActive:
		return "active"
	case VMTeardown:
		return "teardown"
	}
	return "?"
}

// VCPU is the hypervisor-side state of one virtual CPU.
//
// Ownership: before a vCPU is loaded, its fields are protected by the
// VM-table lock. pkvm_vcpu_load transfers ownership to the loading
// physical CPU; while loaded, only that CPU may touch it (paper §3.1,
// "an additional subtlety").
type VCPU struct {
	Idx         int
	Initialized bool
	// LoadedOn is the physical CPU currently owning this vCPU, or -1.
	LoadedOn int
	// Regs is the saved guest register context while not loaded.
	Regs arch.Regs
	// MC is the page reserve for this vCPU's stage 2 growth.
	MC mem.Memcache
	// pending is the scripted queue of guest events consumed by
	// vcpu_run: the simple stand-in for a guest image.
	pending []GuestOp
	// Program, when set, replaces the scripted queue with a real
	// guest program interpreted by vcpu_run (see guestprog.go).
	Program []Insn
}

// VM is one virtual machine's metadata and stage 2 table.
type VM struct {
	Handle Handle
	State  VMState

	// VMID tags this VM's stage 2 translations in the software TLB;
	// fixed at init_vm from the slot, like the hardware VMID KVM
	// assigns.
	VMID arch.VMID

	// Protected is the pKVM "protected VM" flag; all VMs here are
	// protected (the interesting case for the isolation spec).
	Protected bool

	NrVCPUs int
	VCPUs   []*VCPU

	// Lock protects the VM's stage 2 table (one lock per page table,
	// paper §3.1).
	Lock *spinlock.Lock
	// PGT is the guest stage 2 table; nil after teardown.
	PGT *pgtable.Table

	// donated are the frames the host donated at init_vm for the VM's
	// metadata and root table; returned via reclaim after teardown.
	//ghost:guards lock=vms
	donated []arch.PFN
}

// DonatedPages returns a copy of the VM's remaining donated frames.
// The ghost abstraction of VM metadata records it; callers hold the
// VM-table lock.
//
//ghost:requires lock=vms
func (vm *VM) DonatedPages() []arch.PFN {
	out := make([]arch.PFN, len(vm.donated))
	copy(out, vm.donated)
	return out
}

// GuestOpKind enumerates scripted guest behaviours.
type GuestOpKind uint8

const (
	// GuestYield exits to the host with an interrupt.
	GuestYield GuestOpKind = iota
	// GuestAccess performs a memory access at IPA, faulting to the
	// host if unmapped (the virtio-style communication path).
	GuestAccess
	// GuestShareHost issues the guest_share_host hypercall for IPA.
	GuestShareHost
	// GuestUnshareHost issues the guest_unshare_host hypercall.
	GuestUnshareHost
)

func (k GuestOpKind) String() string {
	switch k {
	case GuestYield:
		return "yield"
	case GuestAccess:
		return "access"
	case GuestShareHost:
		return "share-host"
	case GuestUnshareHost:
		return "unshare-host"
	}
	return "?"
}

// GuestOp is one scripted guest event: what the guest does next time
// its vCPU runs.
type GuestOp struct {
	Kind  GuestOpKind
	IPA   arch.IPA
	Write bool
	Value uint64 // written on a successful write access
}

func (op GuestOp) String() string {
	return fmt.Sprintf("%s(ipa=%#x)", op.Kind, uint64(op.IPA))
}

// PerCPU is the hypervisor's physical-CPU-local state.
type PerCPU struct {
	// LoadedVM / LoadedVCPU identify the vCPU owned by this physical
	// CPU, Handle 0 when none.
	LoadedVM   Handle
	LoadedVCPU int
	// LastAbortInjected reports whether the most recent host stage 2
	// abort on this CPU was reflected back into the host rather than
	// satisfied by mapping-on-demand.
	LastAbortInjected bool
}
