package hyp

import (
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
)

// progVM boots a VM with one loaded vCPU running prog, with its
// memcache topped up and one page mapped at gfn 16.
func progVM(t *testing.T, hv *Hypervisor, prog []Insn) (Handle, arch.PFN) {
	t.Helper()
	h := setupVM(t, hv, 0, 100)
	pfns := []arch.PFN{hostPFN(hv, 200), hostPFN(hv, 201), hostPFN(hv, 202), hostPFN(hv, 203)}
	if ret := hvc(t, hv, 0, HCTopupVCPUMemcache, uint64(h), 0, uint64(topupList(hv, pfns)), 4); ret != 0 {
		t.Fatalf("topup: %v", Errno(ret))
	}
	if !hv.LoadGuestProgram(h, 0, prog) {
		t.Fatal("LoadGuestProgram failed")
	}
	if ret := hvc(t, hv, 0, HCVCPULoad, uint64(h), 0); ret != 0 {
		t.Fatalf("load: %v", Errno(ret))
	}
	gp := hostPFN(hv, 300)
	if ret := hvc(t, hv, 0, HCHostMapGuest, uint64(gp), 16); ret != 0 {
		t.Fatalf("map_guest: %v", Errno(ret))
	}
	return h, gp
}

func TestProgramComputeAndStore(t *testing.T) {
	hv := newTestHV(t)
	page := uint64(16 << arch.PageShift)
	// r1 = 40; r2 = 2; r1 += r2; [page] = r1; yield.
	prog := []Insn{
		{Op: OpMovi, Dst: 1, Imm: 40},
		{Op: OpMovi, Dst: 2, Imm: 2},
		{Op: OpAdd, Dst: 1, Src: 2},
		{Op: OpMovi, Dst: 3, Imm: page},
		{Op: OpStore, Dst: 1, Src: 3},
		{Op: OpYield},
	}
	_, gp := progVM(t, hv, prog)
	if ret := hvc(t, hv, 0, HCVCPURun); ret != RunExitYield {
		t.Fatalf("run: %d", ret)
	}
	if got := hv.Mem.Read64(gp.Phys()); got != 42 {
		t.Errorf("guest computed %d, want 42", got)
	}
	// PC sits just past the yield.
	if pc := hv.CPUs[0].GuestRegs[PCReg]; pc != 6 {
		t.Errorf("pc = %d, want 6", pc)
	}
}

func TestProgramFaultRestart(t *testing.T) {
	hv := newTestHV(t)
	unmapped := uint64(40 << arch.PageShift)
	// r1 = 7; [unmapped] = r1; [unmapped] read back to r2; yield.
	prog := []Insn{
		{Op: OpMovi, Dst: 1, Imm: 7},
		{Op: OpMovi, Dst: 3, Imm: unmapped},
		{Op: OpStore, Dst: 1, Src: 3},
		{Op: OpLoad, Dst: 2, Src: 3},
		{Op: OpYield},
	}
	_, _ = progVM(t, hv, prog)

	// First run: the store faults; PC must sit ON the store.
	ret := hvc(t, hv, 0, HCVCPURun)
	if ret != RunExitMemAbort {
		t.Fatalf("run: %d, want mem abort", ret)
	}
	if hv.CPUs[0].HostRegs[2] != unmapped || hv.CPUs[0].HostRegs[3] != 1 {
		t.Errorf("fault detail: ipa=%#x write=%d", hv.CPUs[0].HostRegs[2], hv.CPUs[0].HostRegs[3])
	}
	if pc := hv.CPUs[0].GuestRegs[PCReg]; pc != 2 {
		t.Errorf("pc after fault = %d, want 2 (restart semantics)", pc)
	}

	// The host services the fault and re-runs: the store retries and
	// the program completes.
	gp := hostPFN(hv, 301)
	if r := hvc(t, hv, 0, HCHostMapGuest, uint64(gp), 40); r != 0 {
		t.Fatalf("map_guest: %v", Errno(r))
	}
	if ret := hvc(t, hv, 0, HCVCPURun); ret != RunExitYield {
		t.Fatalf("retried run: %d", ret)
	}
	if got := hv.Mem.Read64(gp.Phys()); got != 7 {
		t.Errorf("stored %d, want 7", got)
	}
	if got := hv.CPUs[0].GuestRegs[2]; got != 7 {
		t.Errorf("loaded back %d, want 7", got)
	}
}

func TestProgramLoopAndBudget(t *testing.T) {
	hv := newTestHV(t)
	// An infinite loop: r1 = r1 (never equal to r2=1) branch to self.
	prog := []Insn{
		{Op: OpMovi, Dst: 1, Imm: 0},
		{Op: OpMovi, Dst: 2, Imm: 1},
		{Op: OpBne, Dst: 1, Src: 2, Imm: 2}, // loops on itself
	}
	_, _ = progVM(t, hv, prog)
	// The budget preempts it: a yield exit, not a hang.
	if ret := hvc(t, hv, 0, HCVCPURun); ret != RunExitYield {
		t.Fatalf("run: %d", ret)
	}
}

func TestProgramHaltIsSticky(t *testing.T) {
	hv := newTestHV(t)
	prog := []Insn{{Op: OpHalt}}
	_, _ = progVM(t, hv, prog)
	for i := 0; i < 3; i++ {
		if ret := hvc(t, hv, 0, HCVCPURun); ret != RunExitYield {
			t.Fatalf("halted run %d: %d", i, ret)
		}
	}
	if pc := hv.CPUs[0].GuestRegs[PCReg]; pc != 0 {
		t.Errorf("halt advanced pc to %d", pc)
	}
}

func TestProgramShareHost(t *testing.T) {
	hv := newTestHV(t)
	page := uint64(16 << arch.PageShift)
	prog := []Insn{
		{Op: OpMovi, Dst: 3, Imm: page},
		{Op: OpShareHost, Src: 3},
		{Op: OpUnshareHost, Src: 3},
		{Op: OpHalt},
	}
	_, gp := progVM(t, hv, prog)

	// Run 1: the share hypercall exits to the host.
	if ret := hvc(t, hv, 0, HCVCPURun); ret != RunExitYield {
		t.Fatal("share run failed")
	}
	if e := ErrnoFromReg(hv.CPUs[0].GuestRegs[0]); e != OK {
		t.Fatalf("guest share errno: %v", e)
	}
	if !hostTouch(t, hv, 1, arch.IPA(gp.Phys()), true) {
		t.Error("host cannot reach program-shared page")
	}
	// Run 2: the unshare.
	if ret := hvc(t, hv, 0, HCVCPURun); ret != RunExitYield {
		t.Fatal("unshare run failed")
	}
	if hostTouch(t, hv, 1, arch.IPA(gp.Phys()), false) {
		t.Error("host still reaches unshared page")
	}
}

func TestProgramSurvivesContextSwitch(t *testing.T) {
	hv := newTestHV(t)
	page := uint64(16 << arch.PageShift)
	prog := []Insn{
		{Op: OpMovi, Dst: 1, Imm: 11},
		{Op: OpYield},
		{Op: OpMovi, Dst: 3, Imm: page},
		{Op: OpStore, Dst: 1, Src: 3},
		{Op: OpHalt},
	}
	h, gp := progVM(t, hv, prog)

	if ret := hvc(t, hv, 0, HCVCPURun); ret != RunExitYield {
		t.Fatal("first run failed")
	}
	// Put, reload on another CPU: the whole machine (incl. PC in the
	// register file) context-switches.
	if ret := hvc(t, hv, 0, HCVCPUPut); ret != 0 {
		t.Fatal("put failed")
	}
	if ret := hvc(t, hv, 2, HCVCPULoad, uint64(h), 0); ret != 0 {
		t.Fatal("reload failed")
	}
	if ret := hvc(t, hv, 2, HCVCPURun); ret != RunExitYield {
		t.Fatal("resumed run failed")
	}
	if got := hv.Mem.Read64(gp.Phys()); got != 11 {
		t.Errorf("value across context switch: %d, want 11", got)
	}
}

func TestProgramBadOpcodePanics(t *testing.T) {
	hv := newTestHV(t, faults.BugHostFaultRetry) // any injector; not relevant
	prog := []Insn{{Op: Op(99)}}
	_, _ = progVM(t, hv, prog)
	regs := &hv.CPUs[0].HostRegs
	regs[0] = uint64(HCVCPURun)
	err := hv.HandleTrap(0, arch.ExitHVC)
	if err == nil {
		t.Error("invalid opcode did not panic the hypervisor")
	}
}
