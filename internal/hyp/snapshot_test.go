package hyp_test

import (
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

// mutate drives a system through a representative slice of state:
// shares, a VM lifecycle with a mapped guest page, and a host fault.
func mutate(t *testing.T, d *proxy.Driver) {
	t.Helper()
	p1, _ := d.AllocPage()
	if err := d.ShareHyp(0, p1); err != nil {
		t.Fatalf("share_hyp: %v", err)
	}
	h, _, err := d.InitVM(0, 1)
	if err != nil {
		t.Fatalf("init_vm: %v", err)
	}
	if err := d.InitVCPU(0, h, 0); err != nil {
		t.Fatalf("init_vcpu: %v", err)
	}
	if _, err := d.Topup(0, h, 0, 4); err != nil {
		t.Fatalf("topup: %v", err)
	}
	if err := d.VCPULoad(0, h, 0); err != nil {
		t.Fatalf("vcpu_load: %v", err)
	}
	mp, _ := d.AllocPage()
	if err := d.MapGuest(0, mp, 0x4000); err != nil {
		t.Fatalf("map_guest: %v", err)
	}
	fp, _ := d.AllocPage()
	if _, err := d.Access(0, arch.IPA(fp.Phys()), true); err != nil {
		t.Fatalf("access: %v", err)
	}
}

func newSys(t *testing.T) (*hyp.Hypervisor, *proxy.Driver) {
	t.Helper()
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return hv, proxy.New(hv)
}

// TestSnapshotRestoreMatchesFreshBoot captures a base at boot, runs a
// workload, restores, and requires the system to be indistinguishable
// from a system that never ran anything: memory bit-identical, pool
// state identical.
func TestSnapshotRestoreMatchesFreshBoot(t *testing.T) {
	hv, d := newSys(t)
	base, _ := hv.CaptureBase(nil)
	hostSnap := d.HostPool.Snapshot()

	mutate(t, d)
	dirty := base.RestoreBase()
	if dirty == 0 {
		t.Fatal("workload dirtied nothing?")
	}
	d.HostPool.Restore(hostSnap)

	ref, refd := newSys(t)
	if diffs := arch.DiffMemory(hv.Mem, ref.Mem, 8); len(diffs) != 0 {
		t.Fatalf("restored memory diverges from fresh boot: %v", diffs)
	}
	if !hv.HypPool.Snapshot().Equal(ref.HypPool.Snapshot()) {
		t.Fatal("hyp pool diverges from fresh boot")
	}
	if !d.HostPool.Snapshot().Equal(refd.HostPool.Snapshot()) {
		t.Fatal("host pool diverges from fresh boot")
	}

	// The restored system must behave identically: run the workload
	// on both and compare end states.
	mutate(t, d)
	mutate(t, refd)
	if diffs := arch.DiffMemory(hv.Mem, ref.Mem, 8); len(diffs) != 0 {
		t.Fatalf("restored system diverges after identical workload: %v", diffs)
	}
	if !d.HostPool.Snapshot().Equal(refd.HostPool.Snapshot()) {
		t.Fatal("host pool diverges after identical workload")
	}
}

// TestSnapshotDeltaForkAcrossSystems captures a delta on one system
// and forks a sibling system into it without replaying.
func TestSnapshotDeltaForkAcrossSystems(t *testing.T) {
	hvA, dA := newSys(t)
	baseA, _ := hvA.CaptureBase(nil)

	hvB, dB := newSys(t)
	baseB, adopted := hvB.CaptureBase(baseA.Image())
	if !adopted {
		t.Fatal("sibling boot must verify against the shared image")
	}

	mutate(t, dA)
	delta := baseA.CaptureDelta()
	if delta.DirtyFrames() == 0 {
		t.Fatal("delta empty after workload")
	}
	hostAfter := dA.HostPool.Snapshot()

	baseB.RestoreDelta(delta)
	dB.HostPool.Restore(hostAfter)
	if diffs := arch.DiffMemory(hvA.Mem, hvB.Mem, 8); len(diffs) != 0 {
		t.Fatalf("forked sibling memory diverges: %v", diffs)
	}
	if !hvB.HypPool.Snapshot().Equal(hvA.HypPool.Snapshot()) {
		t.Fatal("forked hyp pool diverges")
	}

	// Fork is live: tear the VM down on the fork, then rewind the
	// fork back to its own base.
	if err := dB.VCPUPut(0); err != nil {
		t.Fatalf("vcpu_put on fork: %v", err)
	}
	if err := dB.TeardownVM(0, hyp.HandleOffset); err != nil {
		t.Fatalf("teardown on fork: %v", err)
	}
	baseB.RestoreBase()
	ref, _ := newSys(t)
	if diffs := arch.DiffMemory(hvB.Mem, ref.Mem, 8); len(diffs) != 0 {
		t.Fatalf("fork's base restore diverges from fresh boot: %v", diffs)
	}
}
