package hyp

import (
	"sort"

	"ghostspec/internal/arch"
	"ghostspec/internal/mem"
	"ghostspec/internal/pgtable"
	"ghostspec/internal/spinlock"
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

var spanSnapCowFault = trace.NewName("snapshot.cow-fault")

// System snapshot/restore.
//
// A Base is captured once per worker from its freshly booted system
// and anchors every later restore: the memory image plus the boot-time
// value state. A Delta is the portable difference between some later
// system state and the base — corpus parents are stored as deltas, so
// any worker can fork a child straight into a parent trace's end state
// without replaying it. Deltas are immutable pure data; workers share
// them freely (every worker boots the same deterministic system, so
// one worker's base content equals every other's).
//
// Restores rewrite only dirty memory frames (the copy-on-write trick,
// driven by the per-frame write-generation counters), bump the
// generations of everything they rewrite, and finish with a stale-deps
// TLB sweep — so TLB entries and generation-keyed ghost caches
// self-invalidate exactly where content changed and stay warm
// everywhere else.

// sysState is the value copy of every piece of mutable system state
// that lives outside physical memory: register files, per-CPU
// hypervisor state, VM/vCPU metadata, the reclaim set, and the hyp
// allocator (free-list order included — allocation replay must hand
// out the same frames in the same order).
type sysState struct {
	cpus    []arch.CPU
	percpu  []PerCPU
	vms     [MaxVMs]*vmState
	reclaim []arch.PFN
	hypPool mem.PoolSnapshot
}

type vmState struct {
	handle    Handle
	vmid      arch.VMID
	state     VMState
	protected bool
	nrVCPUs   int
	root      arch.PhysAddr // stage 2 root; 0 if the table is gone
	donated   []arch.PFN
	vcpus     []vcpuState
}

type vcpuState struct {
	idx         int
	initialized bool
	loadedOn    int
	regs        arch.Regs
	mc          []arch.PFN
	pending     []GuestOp
	program     []Insn
}

// Base anchors one worker's system to a shared memory image. The
// image may come from a sibling system (CaptureBase verifies content
// equality and falls back to a private image on mismatch); the
// baseline and boot state are always this system's own.
type Base struct {
	hv   *Hypervisor
	img  *arch.MemImage
	bl   *arch.MemBaseline
	boot *sysState
}

// Delta is a portable snapshot of a system state relative to a base:
// the dirty memory frames plus a full value copy of the non-memory
// state (which is small — copying it wholesale beats diffing it).
type Delta struct {
	Mem   *arch.MemDelta
	state *sysState
}

// DirtyFrames returns the number of memory frames the delta rewrites.
func (d *Delta) DirtyFrames() int { return d.Mem.Frames() }

// CaptureBase snapshots the system as the restore anchor. A non-nil
// shared image from a sibling worker is reused when this system's
// memory verifies bit-identical against it (deterministic boots make
// that the normal case); otherwise a private image is captured. The
// bool result reports whether the shared image was adopted.
func (hv *Hypervisor) CaptureBase(shared *arch.MemImage) (*Base, bool) {
	adopted := false
	img := shared
	var bl *arch.MemBaseline
	if img != nil {
		var ok bool
		if bl, ok = img.NewBaseline(hv.Mem); ok {
			adopted = true
		} else {
			bl = nil
		}
	}
	if bl == nil {
		img = hv.Mem.CaptureImage()
		bl, _ = img.NewBaseline(hv.Mem)
	}
	return &Base{hv: hv, img: img, bl: bl, boot: hv.captureState()}, adopted
}

// Image returns the memory image the base is anchored to, for sharing
// with sibling workers.
func (b *Base) Image() *arch.MemImage { return b.img }

// CaptureDelta snapshots the system's current state relative to the
// base. The system must be quiescent (between executions).
func (b *Base) CaptureDelta() *Delta {
	return &Delta{Mem: b.bl.CaptureDelta(), state: b.hv.captureState()}
}

// RestoreBase rewinds the system to its boot state. Returns the
// number of memory frames rewritten.
func (b *Base) RestoreBase() int { return b.restore(nil) }

// RestoreDelta forks the system into the delta's state: memory becomes
// base+delta, value state becomes the delta's copy. Returns the number
// of memory frames rewritten.
func (b *Base) RestoreDelta(d *Delta) int { return b.restore(d) }

// restore rewinds memory (CoW) and value state to base or base+delta.
// It runs with the system quiescent — between executions, no CPU in a
// hypercall — so the lock-free sweep over every component is sound.
//
//ghostlint:ignore guardcheck quiescent system: restore runs between executions with no concurrent hypercalls
func (b *Base) restore(d *Delta) int {
	hv := b.hv

	// Table-page gauges: the live sets of the persistent host/hyp
	// tables are about to change under them, and the guest tables are
	// about to be dropped wholesale. Count before, fix up after.
	var hostBefore, hypBefore int
	if !telemetry.Disabled() {
		hostBefore = len(hv.hostPGT.TablePages())
		hypBefore = len(hv.hypPGT.TablePages())
		guestPages := 0
		for _, vm := range hv.vms {
			if vm != nil && vm.PGT != nil {
				guestPages += len(vm.PGT.TablePages())
			}
		}
		telGuestTablesLive.Add(-int64(guestPages))
	}

	// Memory: the copy-on-write core — rewrite only frames whose
	// write generation moved since they last matched the target.
	sp := hv.tracer.Begin(hv.traceLane, spanSnapCowFault)
	var dirty int
	if d == nil {
		dirty = b.bl.Restore()
	} else {
		dirty = b.bl.RestoreWith(d.Mem)
	}
	sp.End()

	// Non-memory state.
	st := b.boot
	if d != nil {
		st = d.state
	}
	hv.restoreState(st)

	if !telemetry.Disabled() {
		telHostTablesLive.Add(int64(len(hv.hostPGT.TablePages()) - hostBefore))
		telHypTablesLive.Add(int64(len(hv.hypPGT.TablePages()) - hypBefore))
	}

	// Every rewritten frame bumped its generation, so one stale-deps
	// sweep drops exactly the TLB entries the restore invalidated.
	hv.tlb.InvalidateStale()
	hv.hostTLBIOff = false
	hv.flight.Reset()
	return dirty
}

// captureState copies the non-memory mutable state by value. Like
// restore, it runs on a quiescent system (capture happens between
// executions), so it reads VM state without the vms lock.
//
//ghostlint:ignore guardcheck quiescent system: capture runs between executions with no concurrent hypercalls
func (hv *Hypervisor) captureState() *sysState {
	st := &sysState{
		cpus:    make([]arch.CPU, len(hv.CPUs)),
		percpu:  make([]PerCPU, len(hv.percpu)),
		hypPool: hv.HypPool.Snapshot(),
	}
	for i, c := range hv.CPUs {
		st.cpus[i] = *c
	}
	for i, p := range hv.percpu {
		st.percpu[i] = *p
	}
	for i, vm := range hv.vms {
		if vm == nil {
			continue
		}
		vs := &vmState{
			handle:    vm.Handle,
			vmid:      vm.VMID,
			state:     vm.State,
			protected: vm.Protected,
			nrVCPUs:   vm.NrVCPUs,
			donated:   append([]arch.PFN(nil), vm.donated...),
			vcpus:     make([]vcpuState, len(vm.VCPUs)),
		}
		if vm.PGT != nil {
			vs.root = vm.PGT.Root()
		}
		for j, vcpu := range vm.VCPUs {
			vs.vcpus[j] = vcpuState{
				idx:         vcpu.Idx,
				initialized: vcpu.Initialized,
				loadedOn:    vcpu.LoadedOn,
				regs:        vcpu.Regs,
				mc:          vcpu.MC.Pages(),
				pending:     append([]GuestOp(nil), vcpu.pending...),
				program:     append([]Insn(nil), vcpu.Program...),
			}
		}
		st.vms[i] = vs
	}
	st.reclaim = make([]arch.PFN, 0, len(hv.reclaimable))
	for pfn := range hv.reclaimable {
		st.reclaim = append(st.reclaim, pfn)
	}
	sort.Slice(st.reclaim, func(i, j int) bool { return st.reclaim[i] < st.reclaim[j] })
	return st
}

// restoreState installs a captured value state. Guest page tables are
// re-attached at their recorded roots and rewired exactly like
// newTableFromDonation wires a fresh one; installing the table-page
// gauge callback replays the (restored) tree, so the guest gauge comes
// back consistent without rescanning. Quiescent-system contract as in
// restore.
//
//ghostlint:ignore guardcheck quiescent system: restore runs between executions with no concurrent hypercalls
func (hv *Hypervisor) restoreState(st *sysState) {
	for i := range hv.CPUs {
		*hv.CPUs[i] = st.cpus[i]
	}
	for i := range hv.percpu {
		*hv.percpu[i] = st.percpu[i]
	}
	for i := range hv.vms {
		vs := st.vms[i]
		if vs == nil {
			hv.vms[i] = nil
			continue
		}
		vm := &VM{
			Handle:    vs.handle,
			VMID:      vs.vmid,
			State:     vs.state,
			Protected: vs.protected,
			NrVCPUs:   vs.nrVCPUs,
			donated:   append([]arch.PFN(nil), vs.donated...),
			Lock:      spinlock.NewRanked("guest:"+vs.handle.String(), LockRankGuest, nil),
		}
		vm.Lock.SetTracer(hv.tracer, hv.traceLane)
		for _, vcs := range vs.vcpus {
			vcpu := &VCPU{
				Idx:         vcs.idx,
				Initialized: vcs.initialized,
				LoadedOn:    vcs.loadedOn,
				Regs:        vcs.regs,
				pending:     append([]GuestOp(nil), vcs.pending...),
				Program:     append([]Insn(nil), vcs.program...),
			}
			vcpu.MC.SetPages(vcs.mc)
			vm.VCPUs = append(vm.VCPUs, vcpu)
		}
		if vs.root != 0 {
			pgt := pgtable.Attach("guest_s2:"+vm.Handle.String(), hv.Mem,
				arch.Stage2, nil, arch.LastLevel, vs.root)
			pgt.SetOnTablePage(liveTableGauge(telGuestTablesLive))
			pgt.SetTLBI(hv.guestTLBI(vm.VMID))
			pgt.SetTLB(hv.tlb, vm.VMID)
			pgt.SetTracer(hv.tracer, hv.traceLane)
			vm.PGT = pgt
		}
		hv.vms[i] = vm
	}
	clear(hv.reclaimable)
	for _, pfn := range st.reclaim {
		hv.reclaimable[pfn] = true
	}
	hv.HypPool.Restore(st.hypPool)
}
