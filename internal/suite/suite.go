// Package suite is the handwritten test suite of paper §5: 41 tests —
// 19 targeting error-free paths, 22 targeting error paths, a handful
// highly concurrent and targeting locking — each runnable with or
// without the ghost oracle attached. With the oracle on, a test passes
// only if the implementation behaved as expected AND the oracle raised
// no alarm.
package suite

import (
	"fmt"
	"time"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

// Kind classifies a test, following the paper's taxonomy.
type Kind uint8

const (
	// KindOK targets an error-free path.
	KindOK Kind = iota
	// KindError targets an error path.
	KindError
)

func (k Kind) String() string {
	if k == KindError {
		return "error"
	}
	return "ok"
}

// Ctx is what a test runs against: a freshly booted system, the
// hyp-proxy driver, and (when the oracle is attached) the recorder.
type Ctx struct {
	D   *proxy.Driver
	HV  *hyp.Hypervisor
	Rec *ghost.Recorder // nil when the ghost build is off
}

// Test is one handwritten test.
type Test struct {
	Name string
	Kind Kind
	// Concurrent marks the lock-targeting tests that drive several
	// hardware threads at once.
	Concurrent bool
	Run        func(c *Ctx) error
}

// Result is the outcome of one test.
type Result struct {
	Test     Test
	Err      error
	Alarms   []ghost.Failure
	Duration time.Duration
}

// Passed reports whether the test passed, including oracle silence.
func (r Result) Passed() bool { return r.Err == nil && len(r.Alarms) == 0 }

// Options configure a suite run.
type Options struct {
	// Ghost attaches the oracle (the CONFIG_NVHE_GHOST_SPEC build).
	Ghost bool
	// Bugs are injected into every booted system.
	Bugs []faults.Bug
	// Filter, when non-empty, runs only the named test.
	Filter string
	// Instrument, when set, runs after each system boots (and after
	// the oracle attaches) — e.g. to wrap a coverage tracker around
	// the instrumentation.
	Instrument func(c *Ctx)
}

// Run executes the suite, each test on a freshly booted system.
func Run(opts Options) []Result {
	var results []Result
	for _, tst := range All() {
		if opts.Filter != "" && opts.Filter != tst.Name {
			continue
		}
		hv, err := hyp.New(hyp.Config{Inj: faults.NewInjector(opts.Bugs...)})
		if err != nil {
			results = append(results, Result{Test: tst, Err: err})
			continue
		}
		c := &Ctx{D: proxy.New(hv), HV: hv}
		if opts.Ghost {
			c.Rec = ghost.Attach(hv)
		}
		if opts.Instrument != nil {
			opts.Instrument(c)
		}
		start := time.Now()
		runErr := tst.Run(c)
		res := Result{Test: tst, Err: runErr, Duration: time.Since(start)}
		if c.Rec != nil {
			res.Alarms = c.Rec.Failures()
		}
		results = append(results, res)
	}
	return results
}

// Summary aggregates results.
type Summary struct {
	Total, Passed, Failed int
	OKTests, ErrorTests   int
	Concurrent            int
	TotalDuration         time.Duration
	AlarmCount            int
}

// Summarise folds results.
func Summarise(results []Result) Summary {
	var s Summary
	for _, r := range results {
		s.Total++
		if r.Passed() {
			s.Passed++
		} else {
			s.Failed++
		}
		if r.Test.Kind == KindOK {
			s.OKTests++
		} else {
			s.ErrorTests++
		}
		if r.Test.Concurrent {
			s.Concurrent++
		}
		s.TotalDuration += r.Duration
		s.AlarmCount += len(r.Alarms)
	}
	return s
}

// expect asserts a particular errno came back.
func expect(err error, want hyp.Errno) error {
	if want == hyp.OK {
		if err != nil {
			return fmt.Errorf("want success, got %v", err)
		}
		return nil
	}
	if err != want {
		return fmt.Errorf("want %v, got %v", want, err)
	}
	return nil
}
