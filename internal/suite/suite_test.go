package suite

import (
	"testing"

	"ghostspec/internal/faults"
)

func TestSuiteComposition(t *testing.T) {
	tests := All()
	if len(tests) != 41 {
		t.Errorf("suite has %d tests, want 41 (paper §5)", len(tests))
	}
	var ok, errs, conc int
	names := map[string]bool{}
	for _, tst := range tests {
		if names[tst.Name] {
			t.Errorf("duplicate test name %q", tst.Name)
		}
		names[tst.Name] = true
		switch tst.Kind {
		case KindOK:
			ok++
		case KindError:
			errs++
		}
		if tst.Concurrent {
			conc++
		}
	}
	if ok != 19 || errs != 22 {
		t.Errorf("composition %d ok / %d error, want 19/22", ok, errs)
	}
	if conc < 3 {
		t.Errorf("only %d concurrent tests, want a handful", conc)
	}
}

func TestSuitePassesWithoutGhost(t *testing.T) {
	results := Run(Options{Ghost: false})
	for _, r := range results {
		if !r.Passed() {
			t.Errorf("%s: %v", r.Test.Name, r.Err)
		}
	}
}

func TestSuitePassesWithGhost(t *testing.T) {
	results := Run(Options{Ghost: true})
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Test.Name, r.Err)
		}
		for _, a := range r.Alarms {
			t.Errorf("%s: oracle alarm %v", r.Test.Name, a)
		}
	}
	s := Summarise(results)
	if s.Total != 41 || s.Passed != 41 {
		t.Errorf("summary: %+v", s)
	}
}

func TestSuiteCatchesInjectedBug(t *testing.T) {
	// With a bug injected and the ghost on, at least one test must
	// fail via an oracle alarm even though the implementation-level
	// assertions may still hold.
	results := Run(Options{Ghost: true, Bugs: []faults.Bug{faults.BugShareWrongPerms}})
	s := Summarise(results)
	if s.AlarmCount == 0 {
		t.Error("injected share-wrong-perms raised no alarms across the suite")
	}
}

func TestSuiteFilter(t *testing.T) {
	results := Run(Options{Ghost: true, Filter: "share-basic"})
	if len(results) != 1 || results[0].Test.Name != "share-basic" {
		t.Errorf("filter returned %d results", len(results))
	}
}
