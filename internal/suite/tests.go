package suite

import (
	"fmt"
	"sync"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// setupVM boots a VM with one initialised vCPU, topped-up memcache,
// and the vCPU loaded on cpu.
func setupLoadedVM(c *Ctx, cpu int) (hyp.Handle, error) {
	h, _, err := c.D.InitVM(cpu, 1)
	if err != nil {
		return 0, fmt.Errorf("init_vm: %w", err)
	}
	if err := c.D.InitVCPU(cpu, h, 0); err != nil {
		return 0, fmt.Errorf("init_vcpu: %w", err)
	}
	if _, err := c.D.Topup(cpu, h, 0, 6); err != nil {
		return 0, fmt.Errorf("topup: %w", err)
	}
	if err := c.D.VCPULoad(cpu, h, 0); err != nil {
		return 0, fmt.Errorf("load: %w", err)
	}
	return h, nil
}

// All returns the 41 handwritten tests.
func All() []Test {
	return []Test{
		// ----- 19 error-free tests --------------------------------
		{Name: "share-basic", Kind: KindOK, Run: func(c *Ctx) error {
			pfn, _ := c.D.AllocPage()
			return c.D.ShareHyp(0, pfn)
		}},
		{Name: "share-unshare-roundtrip", Kind: KindOK, Run: func(c *Ctx) error {
			pfn, _ := c.D.AllocPage()
			if err := c.D.ShareHyp(0, pfn); err != nil {
				return err
			}
			if err := c.D.UnshareHyp(0, pfn); err != nil {
				return err
			}
			// The phased range variant over the same page plus its
			// neighbour (one locking phase per page).
			pfn2, _ := c.D.AllocPage()
			lo := pfn
			if pfn2 < lo {
				lo = pfn2
			}
			if err := c.D.ShareHypRange(0, lo, 2); err != nil {
				return err
			}
			if err := c.D.UnshareHyp(0, lo); err != nil {
				return err
			}
			return c.D.UnshareHyp(0, lo+1)
		}},
		{Name: "share-touched-page", Kind: KindOK, Run: func(c *Ctx) error {
			// Sharing a page the host has already faulted in: the
			// owned mapping becomes a shared one.
			pfn, _ := c.D.AllocPage()
			if err := c.D.Write64(0, arch.IPA(pfn.Phys()), 1); err != nil {
				return err
			}
			return c.D.ShareHyp(0, pfn)
		}},
		{Name: "donate-basic", Kind: KindOK, Run: func(c *Ctx) error {
			pfns, err := c.D.AllocPage()
			if err != nil {
				return err
			}
			return c.D.DonateHyp(0, pfns, 1)
		}},
		{Name: "donate-max", Kind: KindOK, Run: func(c *Ctx) error {
			run := make([]arch.PFN, 0, hyp.MaxDonate)
			for len(run) < hyp.MaxDonate {
				pfn, err := c.D.AllocPage()
				if err != nil {
					return err
				}
				if len(run) > 0 && pfn != run[len(run)-1]+1 {
					run = run[:0]
				}
				run = append(run, pfn)
			}
			return c.D.DonateHyp(0, run[0], hyp.MaxDonate)
		}},
		{Name: "demand-map-block", Kind: KindOK, Run: func(c *Ctx) error {
			pfn, _ := c.D.AllocPage()
			ok, err := c.D.Access(0, arch.IPA(pfn.Phys()), true)
			if err != nil || !ok {
				return fmt.Errorf("demand fault: ok=%v err=%v", ok, err)
			}
			return nil
		}},
		{Name: "demand-map-mmio", Kind: KindOK, Run: func(c *Ctx) error {
			ok, err := c.D.Access(0, arch.IPA(hyp.UARTPhys), true)
			if err != nil || !ok {
				return fmt.Errorf("mmio fault: ok=%v err=%v", ok, err)
			}
			return nil
		}},
		{Name: "init-vcpu-multi", Kind: KindOK, Run: func(c *Ctx) error {
			h, _, err := c.D.InitVM(0, 4)
			if err != nil {
				return err
			}
			for i := 0; i < 4; i++ {
				if err := c.D.InitVCPU(0, h, i); err != nil {
					return err
				}
			}
			return nil
		}},
		{Name: "topup-basic", Kind: KindOK, Run: func(c *Ctx) error {
			h, _, err := c.D.InitVM(0, 1)
			if err != nil {
				return err
			}
			if err := c.D.InitVCPU(0, h, 0); err != nil {
				return err
			}
			_, err = c.D.Topup(0, h, 0, 8)
			return err
		}},
		{Name: "vcpu-load-put-cycle", Kind: KindOK, Run: func(c *Ctx) error {
			h, err := setupLoadedVM(c, 0)
			if err != nil {
				return err
			}
			// A quiescent guest just yields.
			if ex, err := c.D.VCPURun(0); err != nil || ex.Code != hyp.RunExitYield {
				return fmt.Errorf("quiescent run: %+v %v", ex, err)
			}
			if err := c.D.VCPUPut(0); err != nil {
				return err
			}
			// Load on a different CPU after putting.
			if err := c.D.VCPULoad(1, h, 0); err != nil {
				return err
			}
			return c.D.VCPUPut(1)
		}},
		{Name: "map-guest-basic", Kind: KindOK, Run: func(c *Ctx) error {
			if _, err := setupLoadedVM(c, 0); err != nil {
				return err
			}
			pfn, _ := c.D.AllocPage()
			return c.D.MapGuest(0, pfn, 16)
		}},
		{Name: "guest-access-rw", Kind: KindOK, Run: func(c *Ctx) error {
			h, err := setupLoadedVM(c, 0)
			if err != nil {
				return err
			}
			pfn, _ := c.D.AllocPage()
			if err := c.D.MapGuest(0, pfn, 16); err != nil {
				return err
			}
			c.D.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestAccess, IPA: 16 << arch.PageShift, Write: true, Value: 77})
			if ex, err := c.D.VCPURun(0); err != nil || ex.Code != hyp.RunExitYield {
				return fmt.Errorf("write run: %+v %v", ex, err)
			}
			c.D.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestAccess, IPA: 16 << arch.PageShift})
			if ex, err := c.D.VCPURun(0); err != nil || ex.Code != hyp.RunExitYield {
				return fmt.Errorf("read run: %+v %v", ex, err)
			}
			if got := c.HV.CPUs[0].GuestRegs[0]; got != 77 {
				return fmt.Errorf("guest read %d, want 77", got)
			}
			return nil
		}},
		{Name: "guest-fault-exit", Kind: KindOK, Run: func(c *Ctx) error {
			h, err := setupLoadedVM(c, 0)
			if err != nil {
				return err
			}
			c.D.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestAccess, IPA: 40 << arch.PageShift, Write: true})
			ex, err := c.D.VCPURun(0)
			if err != nil || ex.Code != hyp.RunExitMemAbort || ex.IPA != 40<<arch.PageShift || !ex.Write {
				return fmt.Errorf("fault exit: %+v %v", ex, err)
			}
			return nil
		}},
		{Name: "guest-share-unshare-host", Kind: KindOK, Run: func(c *Ctx) error {
			h, err := setupLoadedVM(c, 0)
			if err != nil {
				return err
			}
			pfn, _ := c.D.AllocPage()
			if err := c.D.MapGuest(0, pfn, 16); err != nil {
				return err
			}
			ipa := arch.IPA(16 << arch.PageShift)
			c.D.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestShareHost, IPA: ipa})
			if _, err := c.D.VCPURun(0); err != nil {
				return err
			}
			if e := hyp.ErrnoFromReg(c.HV.CPUs[0].GuestRegs[0]); e != hyp.OK {
				return fmt.Errorf("guest share: %v", e)
			}
			// Host can reach the shared page now.
			if ok, _ := c.D.Access(1, arch.IPA(pfn.Phys()), true); !ok {
				return fmt.Errorf("host cannot reach guest-shared page")
			}
			c.D.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestUnshareHost, IPA: ipa})
			if _, err := c.D.VCPURun(0); err != nil {
				return err
			}
			if e := hyp.ErrnoFromReg(c.HV.CPUs[0].GuestRegs[0]); e != hyp.OK {
				return fmt.Errorf("guest unshare: %v", e)
			}
			if ok, _ := c.D.Access(1, arch.IPA(pfn.Phys()), false); ok {
				return fmt.Errorf("host still reaches unshared page")
			}
			return nil
		}},
		{Name: "teardown-reclaim-full", Kind: KindOK, Run: func(c *Ctx) error {
			h, err := setupLoadedVM(c, 0)
			if err != nil {
				return err
			}
			pfn, _ := c.D.AllocPage()
			if err := c.D.MapGuest(0, pfn, 16); err != nil {
				return err
			}
			if err := c.D.VCPUPut(0); err != nil {
				return err
			}
			if err := c.D.TeardownVM(0, h); err != nil {
				return err
			}
			// Reclaim the guest data page and verify the host owns it
			// again.
			if err := c.D.ReclaimPage(0, pfn); err != nil {
				return err
			}
			if ok, _ := c.D.Access(0, arch.IPA(pfn.Phys()), true); !ok {
				return fmt.Errorf("reclaimed page not accessible")
			}
			return nil
		}},
		{Name: "multi-vm-coexist", Kind: KindOK, Run: func(c *Ctx) error {
			h1, _, err := c.D.InitVM(0, 1)
			if err != nil {
				return err
			}
			h2, _, err := c.D.InitVM(0, 1)
			if err != nil {
				return err
			}
			if h1 == h2 {
				return fmt.Errorf("duplicate handles")
			}
			if err := c.D.InitVCPU(0, h1, 0); err != nil {
				return err
			}
			if err := c.D.InitVCPU(0, h2, 0); err != nil {
				return err
			}
			if err := c.D.VCPULoad(0, h1, 0); err != nil {
				return err
			}
			if err := c.D.VCPULoad(1, h2, 0); err != nil {
				return err
			}
			if err := c.D.VCPUPut(0); err != nil {
				return err
			}
			return c.D.VCPUPut(1)
		}},
		// Concurrent, lock-targeting (still error-free).
		{Name: "concurrent-share-distinct", Kind: KindOK, Concurrent: true, Run: func(c *Ctx) error {
			var wg sync.WaitGroup
			errs := make([]error, 4)
			for cpu := 0; cpu < 4; cpu++ {
				pfn, err := c.D.AllocPage()
				if err != nil {
					return err
				}
				wg.Add(1)
				go func(cpu int, pfn arch.PFN) {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						if err := c.D.ShareHyp(cpu, pfn); err != nil {
							errs[cpu] = err
							return
						}
						if err := c.D.UnshareHyp(cpu, pfn); err != nil {
							errs[cpu] = err
							return
						}
					}
				}(cpu, pfn)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return nil
		}},
		{Name: "concurrent-demand-fault-same-region", Kind: KindOK, Concurrent: true, Run: func(c *Ctx) error {
			// All CPUs fault the same 2MB region: one wins the block
			// mapping, the others take the spurious-fault path the
			// paper's bug 4 mishandled.
			pfn, _ := c.D.AllocPage()
			var wg sync.WaitGroup
			errs := make([]error, 4)
			for cpu := 0; cpu < 4; cpu++ {
				wg.Add(1)
				go func(cpu int) {
					defer wg.Done()
					ok, err := c.D.Access(cpu, arch.IPA(pfn.Phys()), true)
					if err != nil {
						errs[cpu] = err
					} else if !ok {
						errs[cpu] = fmt.Errorf("cpu %d: access denied", cpu)
					}
				}(cpu)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return nil
		}},
		{Name: "concurrent-vm-lifecycle", Kind: KindOK, Concurrent: true, Run: func(c *Ctx) error {
			var wg sync.WaitGroup
			errs := make([]error, 3)
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func(cpu int) {
					defer wg.Done()
					h, _, err := c.D.InitVM(cpu, 1)
					if err != nil {
						errs[cpu] = err
						return
					}
					if err := c.D.InitVCPU(cpu, h, 0); err != nil {
						errs[cpu] = err
						return
					}
					if err := c.D.VCPULoad(cpu, h, 0); err != nil {
						errs[cpu] = err
						return
					}
					if err := c.D.VCPUPut(cpu); err != nil {
						errs[cpu] = err
						return
					}
					errs[cpu] = c.D.TeardownVM(cpu, h)
				}(i)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return nil
		}},

		// ----- 22 error-path tests --------------------------------
		{Name: "share-double", Kind: KindError, Run: func(c *Ctx) error {
			pfn, _ := c.D.AllocPage()
			if err := c.D.ShareHyp(0, pfn); err != nil {
				return err
			}
			if err := expect(c.D.ShareHyp(0, pfn), hyp.EPERM); err != nil {
				return err
			}
			// The phased range variant stops with EPERM at the
			// already-shared first page.
			return expect(c.D.ShareHypRange(0, pfn, 2), hyp.EPERM)
		}},
		{Name: "share-mmio", Kind: KindError, Run: func(c *Ctx) error {
			if err := expect(c.D.ShareHyp(0, arch.PhysToPFN(hyp.UARTPhys)), hyp.EINVAL); err != nil {
				return err
			}
			if err := expect(c.D.ShareHypRange(0, arch.PhysToPFN(hyp.UARTPhys), 2), hyp.EINVAL); err != nil {
				return err
			}
			pfn, _ := c.D.AllocPage()
			return expect(c.D.ShareHypRange(0, pfn, hyp.MaxShareRange+1), hyp.EINVAL)
		}},
		{Name: "share-carveout", Kind: KindError, Run: func(c *Ctx) error {
			return expect(c.D.ShareHyp(0, arch.PhysToPFN(c.HV.Globals().CarveStart)), hyp.EPERM)
		}},
		{Name: "share-guest-page", Kind: KindError, Run: func(c *Ctx) error {
			if _, err := setupLoadedVM(c, 0); err != nil {
				return err
			}
			pfn, _ := c.D.AllocPage()
			if err := c.D.MapGuest(0, pfn, 16); err != nil {
				return err
			}
			return expect(c.D.ShareHyp(0, pfn), hyp.EPERM)
		}},
		{Name: "unshare-unshared", Kind: KindError, Run: func(c *Ctx) error {
			pfn, _ := c.D.AllocPage()
			return expect(c.D.UnshareHyp(0, pfn), hyp.EPERM)
		}},
		{Name: "unshare-mmio", Kind: KindError, Run: func(c *Ctx) error {
			return expect(c.D.UnshareHyp(0, arch.PhysToPFN(hyp.UARTPhys)), hyp.EINVAL)
		}},
		{Name: "donate-bad-size", Kind: KindError, Run: func(c *Ctx) error {
			pfn, _ := c.D.AllocPage()
			if err := expect(c.D.DonateHyp(0, pfn, 0), hyp.EINVAL); err != nil {
				return err
			}
			return expect(c.D.DonateHyp(0, pfn, hyp.MaxDonate+1), hyp.EINVAL)
		}},
		{Name: "donate-shared-page", Kind: KindError, Run: func(c *Ctx) error {
			pfn, _ := c.D.AllocPage()
			if err := c.D.ShareHyp(0, pfn); err != nil {
				return err
			}
			return expect(c.D.DonateHyp(0, pfn, 1), hyp.EPERM)
		}},
		{Name: "reclaim-unreclaimable", Kind: KindError, Run: func(c *Ctx) error {
			pfn, _ := c.D.AllocPage()
			return expect(c.D.ReclaimPage(0, pfn), hyp.EPERM)
		}},
		{Name: "reclaim-double", Kind: KindError, Run: func(c *Ctx) error {
			h, donated, err := c.D.InitVM(0, 1)
			if err != nil {
				return err
			}
			if err := c.D.TeardownVM(0, h); err != nil {
				return err
			}
			if err := c.D.ReclaimPage(0, donated[0]); err != nil {
				return err
			}
			return expect(c.D.ReclaimPage(0, donated[0]), hyp.EPERM)
		}},
		{Name: "init-vm-bad-args", Kind: KindError, Run: func(c *Ctx) error {
			pfn, _ := c.D.AllocPage()
			ret, err := c.D.HVC(0, hyp.HCInitVM, 0, uint64(pfn), hyp.InitVMDonation(0))
			if err != nil {
				return err
			}
			if err := expect(hyp.Errno(ret), hyp.EINVAL); err != nil {
				return err
			}
			ret, err = c.D.HVC(0, hyp.HCInitVM, 1, uint64(pfn), 99)
			if err != nil {
				return err
			}
			return expect(hyp.Errno(ret), hyp.EINVAL)
		}},
		{Name: "init-vm-donation-not-owned", Kind: KindError, Run: func(c *Ctx) error {
			carve := arch.PhysToPFN(c.HV.Globals().CarveStart)
			ret, err := c.D.HVC(0, hyp.HCInitVM, 1, uint64(carve), hyp.InitVMDonation(1))
			if err != nil {
				return err
			}
			return expect(hyp.Errno(ret), hyp.EPERM)
		}},
		{Name: "init-vm-slots-exhausted", Kind: KindError, Run: func(c *Ctx) error {
			for i := 0; i < hyp.MaxVMs; i++ {
				if _, _, err := c.D.InitVM(0, 1); err != nil {
					return fmt.Errorf("vm %d: %w", i, err)
				}
			}
			_, _, err := c.D.InitVM(0, 1)
			return expect(err, hyp.ENOSPC)
		}},
		{Name: "init-vcpu-bad-handle", Kind: KindError, Run: func(c *Ctx) error {
			return expect(c.D.InitVCPU(0, 0x9999, 0), hyp.ENOENT)
		}},
		{Name: "init-vcpu-bad-index", Kind: KindError, Run: func(c *Ctx) error {
			h, _, err := c.D.InitVM(0, 1)
			if err != nil {
				return err
			}
			return expect(c.D.InitVCPU(0, h, 3), hyp.EINVAL)
		}},
		{Name: "init-vcpu-double", Kind: KindError, Run: func(c *Ctx) error {
			h, _, err := c.D.InitVM(0, 1)
			if err != nil {
				return err
			}
			if err := c.D.InitVCPU(0, h, 0); err != nil {
				return err
			}
			return expect(c.D.InitVCPU(0, h, 0), hyp.EEXIST)
		}},
		{Name: "load-errors", Kind: KindError, Run: func(c *Ctx) error {
			if err := expect(c.D.VCPULoad(0, 0x9999, 0), hyp.ENOENT); err != nil {
				return err
			}
			h, _, err := c.D.InitVM(0, 2)
			if err != nil {
				return err
			}
			// Uninitialised vCPU.
			if err := expect(c.D.VCPULoad(0, h, 1), hyp.ENOENT); err != nil {
				return err
			}
			// Index out of range.
			return expect(c.D.VCPULoad(0, h, 7), hyp.EINVAL)
		}},
		{Name: "load-double", Kind: KindError, Run: func(c *Ctx) error {
			h, err := setupLoadedVM(c, 0)
			if err != nil {
				return err
			}
			if err := expect(c.D.VCPULoad(0, h, 0), hyp.EBUSY); err != nil {
				return err
			}
			return expect(c.D.VCPULoad(1, h, 0), hyp.EBUSY)
		}},
		{Name: "run-put-unloaded", Kind: KindError, Run: func(c *Ctx) error {
			if _, err := c.D.VCPURun(0); err != hyp.ENOENT {
				return fmt.Errorf("run unloaded: want ENOENT, got %v", err)
			}
			if err := expect(c.D.VCPUPut(0), hyp.ENOENT); err != nil {
				return err
			}
			// And a hypercall number that does not exist at all.
			ret, err := c.D.HVC(0, hyp.HC(0x7777))
			if err != nil {
				return err
			}
			return expect(hyp.Errno(ret), hyp.ENOSYS)
		}},
		{Name: "teardown-errors", Kind: KindError, Run: func(c *Ctx) error {
			if err := expect(c.D.TeardownVM(0, 0x9999), hyp.ENOENT); err != nil {
				return err
			}
			h, err := setupLoadedVM(c, 0)
			if err != nil {
				return err
			}
			return expect(c.D.TeardownVM(1, h), hyp.EBUSY)
		}},
		{Name: "map-guest-errors", Kind: KindError, Run: func(c *Ctx) error {
			pfn, _ := c.D.AllocPage()
			// Nothing loaded.
			if err := expect(c.D.MapGuest(0, pfn, 16), hyp.ENOENT); err != nil {
				return err
			}
			if _, err := setupLoadedVM(c, 0); err != nil {
				return err
			}
			// Non-canonical guest address.
			if err := expect(c.D.MapGuest(0, pfn, 1<<40), hyp.EINVAL); err != nil {
				return err
			}
			// Donating memory the host does not own.
			carve := arch.PhysToPFN(c.HV.Globals().CarveStart)
			if err := expect(c.D.MapGuest(0, carve, 16), hyp.EPERM); err != nil {
				return err
			}
			// Double map of one gfn.
			if err := c.D.MapGuest(0, pfn, 16); err != nil {
				return err
			}
			pfn2, _ := c.D.AllocPage()
			if err := expect(c.D.MapGuest(0, pfn2, 16), hyp.EEXIST); err != nil {
				return err
			}
			// Exhaust the memcache: -ENOMEM on table growth. Target
			// far-apart guest addresses so each map needs fresh
			// tables.
			gfn := uint64(1) << 27 // new level-1 subtree each time
			for i := 0; ; i++ {
				if i > 64 {
					return fmt.Errorf("memcache never exhausted")
				}
				p, _ := c.D.AllocPage()
				err := c.D.MapGuest(0, p, gfn*uint64(i+2))
				if err == hyp.ENOMEM {
					return nil
				}
				if err != nil {
					return err
				}
			}
		}},
		{Name: "topup-errors", Kind: KindError, Run: func(c *Ctx) error {
			// Bad handle.
			ret, err := c.D.HVC(0, hyp.HCTopupVCPUMemcache, 0x9999, 0, 0, 1)
			if err != nil {
				return err
			}
			if err := expect(hyp.Errno(ret), hyp.ENOENT); err != nil {
				return err
			}
			h, _, err := c.D.InitVM(0, 1)
			if err != nil {
				return err
			}
			if err := c.D.InitVCPU(0, h, 0); err != nil {
				return err
			}
			pfn, _ := c.D.AllocPage()
			// Oversized request.
			ret, _ = c.D.HVC(0, hyp.HCTopupVCPUMemcache, uint64(h), 0, uint64(pfn.Phys()), hyp.MemcacheCapPages+1)
			if err := expect(hyp.Errno(ret), hyp.EINVAL); err != nil {
				return err
			}
			// Misaligned donation address.
			ret, _ = c.D.HVC(0, hyp.HCTopupVCPUMemcache, uint64(h), 0, uint64(pfn.Phys())+0x800, 1)
			if err := expect(hyp.Errno(ret), hyp.EINVAL); err != nil {
				return err
			}
			// Donating hypervisor-owned memory.
			carve := uint64(c.HV.Globals().CarveStart)
			ret, _ = c.D.HVC(0, hyp.HCTopupVCPUMemcache, uint64(h), 0, carve, 1)
			if err := expect(hyp.Errno(ret), hyp.EPERM); err != nil {
				return err
			}
			// Topping up a loaded vCPU.
			if err := c.D.VCPULoad(0, h, 0); err != nil {
				return err
			}
			ret, _ = c.D.HVC(0, hyp.HCTopupVCPUMemcache, uint64(h), 0, uint64(pfn.Phys()), 1)
			return expect(hyp.Errno(ret), hyp.EBUSY)
		}},
	}
}
