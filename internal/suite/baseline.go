package suite

import (
	"ghostspec/internal/coverage"
)

// CoverageBaseline runs the full handwritten suite with the oracle
// attached and a coverage tracker wrapped around every booted system,
// returning the merged aggregate and the per-test results. This is
// the suite's coverage yardstick: benchreport's E2 experiment reports
// it, and campaign reports compare fuzzing coverage against it.
func CoverageBaseline() (*coverage.Aggregator, []Result) {
	agg := coverage.NewAggregator()
	var trackers []*coverage.Tracker
	results := Run(Options{
		Ghost: true,
		Instrument: func(c *Ctx) {
			tr := coverage.Wrap(c.HV, c.Rec)
			c.HV.SetInstrumentation(tr)
			trackers = append(trackers, tr)
		},
	})
	for _, tr := range trackers {
		agg.Absorb(tr)
	}
	return agg, results
}
