// Package proxy is the "hyp-proxy" test driver (paper §5): it plays
// the role of the kernel patch plus user-space library that lets tests
// allocate kernel memory and invoke pKVM hypercalls directly across
// the security boundary — with both well-behaved wrappers and fully
// arbitrary raw invocations, since the hypervisor must tolerate a
// malicious host.
package proxy

import (
	"fmt"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
	"ghostspec/internal/mem"
)

// Driver wraps one booted hypervisor with host-side conveniences: a
// host page allocator and typed hypercall wrappers.
type Driver struct {
	HV *hyp.Hypervisor
	// HostPool allocates host-owned frames for tests.
	HostPool *mem.Pool
}

// New builds a driver over hv, carving the host pool out of the
// host-allocatable range.
func New(hv *hyp.Hypervisor) *Driver {
	return &Driver{
		HV:       hv,
		HostPool: mem.NewPool("host", arch.PhysToPFN(hv.HostMemStart()), hv.HostMemPages()),
	}
}

// AllocPage takes a host frame, as the kernel side of the hyp-proxy
// would via the page allocator.
func (d *Driver) AllocPage() (arch.PFN, error) {
	pfn, ok := d.HostPool.Alloc()
	if !ok {
		return 0, fmt.Errorf("proxy: host memory exhausted")
	}
	return pfn, nil
}

// FreePage returns a host frame.
func (d *Driver) FreePage(pfn arch.PFN) { d.HostPool.Free(pfn) }

// HVC issues a raw hypercall on cpu with arbitrary arguments — the
// "arbitrary invocation" entry point used by random testing. It
// returns the x1 result, or the hypervisor panic if one occurred.
func (d *Driver) HVC(cpu int, id hyp.HC, args ...uint64) (int64, error) {
	regs := &d.HV.CPUs[cpu].HostRegs
	regs[0] = uint64(id)
	for i := range regs[1:] {
		regs[i+1] = 0
	}
	for i, a := range args {
		if i+1 >= arch.NumGPRs {
			break
		}
		regs[i+1] = a
	}
	if err := d.HV.HandleTrap(cpu, arch.ExitHVC); err != nil {
		return 0, err
	}
	return int64(regs[1]), nil
}

// errnoOf converts a hypercall result into an error (nil on success).
func errnoOf(ret int64) error {
	if ret >= 0 {
		return nil
	}
	return hyp.Errno(ret)
}

// Access performs a host memory access at ipa, taking and handling the
// stage 2 fault exactly as the hardware/kernel pair would: walk,
// fault to EL2, retry. It reports whether the access ultimately
// succeeded (false means the hypervisor injected the fault back — the
// host would have taken an exception).
func (d *Driver) Access(cpu int, ipa arch.IPA, write bool) (bool, error) {
	// Both translation attempts go through the software TLB: that is
	// what the MMU would do, and it is what makes stale entries after a
	// skipped TLBI observable.
	acc := arch.Access{Write: write}
	if _, fault := d.HV.TranslateHost(cpu, ipa, acc); fault == nil {
		return true, nil
	}
	d.HV.CPUs[cpu].Fault = arch.FaultInfo{Addr: ipa, Write: write}
	if err := d.HV.HandleTrap(cpu, arch.ExitMemAbort); err != nil {
		return false, err
	}
	_, fault := d.HV.TranslateHost(cpu, ipa, acc)
	return fault == nil, nil
}

// FaultAgain delivers a stage 2 fault for ipa to the hypervisor
// without first checking the host's translation — modelling the
// spurious fault a concurrent host CPU causes when it races another
// CPU's demand-mapping of the same page, or a hardware retry of a
// fault the hypervisor already resolved. A robust hypervisor treats
// an already-valid entry as spurious and returns; the paper's §6
// bug 4 panicked here. The returned error is the hypervisor panic,
// if one occurred.
func (d *Driver) FaultAgain(cpu int, ipa arch.IPA, write bool) error {
	d.HV.CPUs[cpu].Fault = arch.FaultInfo{Addr: ipa, Write: write}
	return d.HV.HandleTrap(cpu, arch.ExitMemAbort)
}

// Write64 writes host memory through the host's translation, faulting
// in the page on demand. It fails if the host does not own the page.
func (d *Driver) Write64(cpu int, ipa arch.IPA, v uint64) error {
	ok, err := d.Access(cpu, ipa, true)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("proxy: host write to %#x faulted", uint64(ipa))
	}
	d.HV.Mem.Write64(arch.PhysAddr(ipa), v)
	return nil
}

// Read64 reads host memory through the host's translation.
func (d *Driver) Read64(cpu int, ipa arch.IPA) (uint64, error) {
	ok, err := d.Access(cpu, ipa, false)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("proxy: host read of %#x faulted", uint64(ipa))
	}
	return d.HV.Mem.Read64(arch.PhysAddr(ipa)), nil
}

// ---------------------------------------------------------------------
// Well-behaved wrappers, one per hypercall.

// ShareHyp shares a host page with the hypervisor.
func (d *Driver) ShareHyp(cpu int, pfn arch.PFN) error {
	ret, err := d.HVC(cpu, hyp.HCHostShareHyp, uint64(pfn))
	if err != nil {
		return err
	}
	return errnoOf(ret)
}

// ShareHypRange shares nr contiguous pages through the phased
// hypercall (one locking phase per page).
func (d *Driver) ShareHypRange(cpu int, pfn arch.PFN, nr uint64) error {
	ret, err := d.HVC(cpu, hyp.HCHostShareHypRange, uint64(pfn), nr)
	if err != nil {
		return err
	}
	return errnoOf(ret)
}

// UnshareHyp revokes a share.
func (d *Driver) UnshareHyp(cpu int, pfn arch.PFN) error {
	ret, err := d.HVC(cpu, hyp.HCHostUnshareHyp, uint64(pfn))
	if err != nil {
		return err
	}
	return errnoOf(ret)
}

// DonateHyp donates nr contiguous pages to the hypervisor.
func (d *Driver) DonateHyp(cpu int, pfn arch.PFN, nr uint64) error {
	ret, err := d.HVC(cpu, hyp.HCHostDonateHyp, uint64(pfn), nr)
	if err != nil {
		return err
	}
	return errnoOf(ret)
}

// ReclaimPage reclaims one page of a torn-down VM.
func (d *Driver) ReclaimPage(cpu int, pfn arch.PFN) error {
	ret, err := d.HVC(cpu, hyp.HCHostReclaimPage, uint64(pfn))
	if err != nil {
		return err
	}
	return errnoOf(ret)
}

// InitVM creates a VM, allocating and donating the required pages from
// the host pool. It returns the handle and the donated range.
func (d *Driver) InitVM(cpu int, nrVCPUs int) (hyp.Handle, []arch.PFN, error) {
	need := hyp.InitVMDonation(nrVCPUs)
	pfns, err := d.allocContiguous(need)
	if err != nil {
		return 0, nil, err
	}
	ret, err := d.HVC(cpu, hyp.HCInitVM, uint64(nrVCPUs), uint64(pfns[0]), need)
	if err != nil {
		return 0, nil, err
	}
	if ret < 0 {
		return 0, nil, hyp.Errno(ret)
	}
	return hyp.Handle(ret), pfns, nil
}

// allocContiguous allocates until it finds nr physically contiguous
// frames (the simple pool allocates downward-contiguously in practice).
func (d *Driver) allocContiguous(nr uint64) ([]arch.PFN, error) {
	var run []arch.PFN
	var spill []arch.PFN
	defer func() {
		for _, p := range spill {
			d.HostPool.Free(p)
		}
	}()
	for attempts := 0; attempts < 4096; attempts++ {
		pfn, ok := d.HostPool.Alloc()
		if !ok {
			for _, p := range run {
				d.HostPool.Free(p)
			}
			return nil, fmt.Errorf("proxy: host memory exhausted for contiguous run")
		}
		if len(run) == 0 || pfn == run[len(run)-1]+1 {
			run = append(run, pfn)
		} else if len(run) > 0 && pfn == run[0]-1 {
			run = append([]arch.PFN{pfn}, run...)
		} else {
			spill = append(spill, run...)
			run = []arch.PFN{pfn}
		}
		if uint64(len(run)) == nr {
			return run, nil
		}
	}
	return nil, fmt.Errorf("proxy: could not find %d contiguous frames", nr)
}

// InitVCPU initialises one vCPU.
func (d *Driver) InitVCPU(cpu int, h hyp.Handle, idx int) error {
	ret, err := d.HVC(cpu, hyp.HCInitVCPU, uint64(h), uint64(idx))
	if err != nil {
		return err
	}
	return errnoOf(ret)
}

// TeardownVM destroys a VM.
func (d *Driver) TeardownVM(cpu int, h hyp.Handle) error {
	ret, err := d.HVC(cpu, hyp.HCTeardownVM, uint64(h))
	if err != nil {
		return err
	}
	return errnoOf(ret)
}

// VCPULoad / VCPUPut / VCPURun drive vCPU scheduling.
func (d *Driver) VCPULoad(cpu int, h hyp.Handle, idx int) error {
	ret, err := d.HVC(cpu, hyp.HCVCPULoad, uint64(h), uint64(idx))
	if err != nil {
		return err
	}
	return errnoOf(ret)
}

// VCPUPut saves and unloads the current vCPU.
func (d *Driver) VCPUPut(cpu int) error {
	ret, err := d.HVC(cpu, hyp.HCVCPUPut)
	if err != nil {
		return err
	}
	return errnoOf(ret)
}

// RunExit is the decoded outcome of one vcpu_run.
type RunExit struct {
	Code  int64
	IPA   arch.IPA // for mem-abort exits
	Write bool
}

// VCPURun runs the loaded vCPU through one guest event.
func (d *Driver) VCPURun(cpu int) (RunExit, error) {
	ret, err := d.HVC(cpu, hyp.HCVCPURun)
	if err != nil {
		return RunExit{}, err
	}
	if ret < 0 {
		return RunExit{}, hyp.Errno(ret)
	}
	regs := d.HV.CPUs[cpu].HostRegs
	return RunExit{Code: ret, IPA: arch.IPA(regs[2]), Write: regs[3] != 0}, nil
}

// MapGuest donates a host page into the loaded VM at gfn.
func (d *Driver) MapGuest(cpu int, pfn arch.PFN, gfn uint64) error {
	ret, err := d.HVC(cpu, hyp.HCHostMapGuest, uint64(pfn), gfn)
	if err != nil {
		return err
	}
	return errnoOf(ret)
}

// Topup allocates nr host pages, threads the donation list through
// them, and tops up the vCPU memcache. Returns the donated frames.
func (d *Driver) Topup(cpu int, h hyp.Handle, idx int, nr uint64) ([]arch.PFN, error) {
	pfns := make([]arch.PFN, 0, nr)
	for i := uint64(0); i < nr; i++ {
		pfn, err := d.AllocPage()
		if err != nil {
			return nil, err
		}
		pfns = append(pfns, pfn)
	}
	for i, pfn := range pfns {
		next := uint64(0)
		if i+1 < len(pfns) {
			next = uint64(pfns[i+1].Phys())
		}
		// The host writes the list through its own mapping.
		if err := d.Write64(cpu, arch.IPA(pfn.Phys()), next); err != nil {
			return nil, err
		}
	}
	ret, err := d.HVC(cpu, hyp.HCTopupVCPUMemcache, uint64(h), uint64(idx), uint64(pfns[0].Phys()), nr)
	if err != nil {
		return nil, err
	}
	if ret < 0 {
		return nil, hyp.Errno(ret)
	}
	return pfns, nil
}

// QueueGuestOp scripts the next guest event.
func (d *Driver) QueueGuestOp(h hyp.Handle, idx int, op hyp.GuestOp) bool {
	return d.HV.QueueGuestOp(h, idx, op)
}
