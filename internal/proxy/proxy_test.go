package proxy

import (
	"errors"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

func newDriver(t *testing.T) *Driver {
	t.Helper()
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(hv)
}

func TestAllocAndAccess(t *testing.T) {
	d := newDriver(t)
	pfn, err := d.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	// Demand-fault the page in via a write, read it back.
	if err := d.Write64(0, arch.IPA(pfn.Phys()), 0xfeed); err != nil {
		t.Fatal(err)
	}
	v, err := d.Read64(0, arch.IPA(pfn.Phys()))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xfeed {
		t.Errorf("read back %#x", v)
	}
	d.FreePage(pfn)
}

func TestAccessDenied(t *testing.T) {
	d := newDriver(t)
	ok, err := d.Access(0, arch.IPA(d.HV.Globals().CarveStart), true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("access to hypervisor carve-out succeeded")
	}
}

func TestShareUnshareWrappers(t *testing.T) {
	d := newDriver(t)
	pfn, _ := d.AllocPage()
	if err := d.ShareHyp(0, pfn); err != nil {
		t.Fatalf("share: %v", err)
	}
	if err := d.ShareHyp(0, pfn); !errors.Is(err, hyp.EPERM) {
		t.Errorf("double share: %v, want EPERM", err)
	}
	if err := d.UnshareHyp(0, pfn); err != nil {
		t.Fatalf("unshare: %v", err)
	}
}

func TestVMWorkflow(t *testing.T) {
	d := newDriver(t)
	h, donated, err := d.InitVM(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(donated) != int(hyp.InitVMDonation(1)) {
		t.Fatalf("donated %d pages", len(donated))
	}
	if err := d.InitVCPU(0, h, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Topup(0, h, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.VCPULoad(0, h, 0); err != nil {
		t.Fatal(err)
	}
	gp, _ := d.AllocPage()
	if err := d.MapGuest(0, gp, 7); err != nil {
		t.Fatal(err)
	}

	// Guest writes through its new page; run reports a yield.
	d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestAccess, IPA: 7 << arch.PageShift, Write: true, Value: 5})
	exit, err := d.VCPURun(0)
	if err != nil || exit.Code != hyp.RunExitYield {
		t.Fatalf("run: %+v %v", exit, err)
	}
	// Unmapped guest access reports the fault detail.
	d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestAccess, IPA: 8 << arch.PageShift, Write: true})
	exit, err = d.VCPURun(0)
	if err != nil || exit.Code != hyp.RunExitMemAbort || exit.IPA != 8<<arch.PageShift || !exit.Write {
		t.Fatalf("fault exit: %+v %v", exit, err)
	}

	if err := d.VCPUPut(0); err != nil {
		t.Fatal(err)
	}
	if err := d.TeardownVM(0, h); err != nil {
		t.Fatal(err)
	}
	// Reclaim one of the donated pages.
	if err := d.ReclaimPage(0, donated[0]); err != nil {
		t.Fatal(err)
	}
}

func TestRawHVCArbitraryArgs(t *testing.T) {
	d := newDriver(t)
	ret, err := d.HVC(0, hyp.HC(0xdead), 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17)
	if err != nil {
		t.Fatal(err)
	}
	if hyp.Errno(ret) != hyp.ENOSYS {
		t.Errorf("unknown hypercall = %v", hyp.Errno(ret))
	}
}

func TestContiguousAllocation(t *testing.T) {
	d := newDriver(t)
	pfns, err := d.allocContiguous(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pfns); i++ {
		if pfns[i] != pfns[i-1]+1 {
			t.Fatalf("not contiguous: %v", pfns)
		}
	}
}
