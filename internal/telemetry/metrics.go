// Package telemetry is the hypervisor's observability layer: a
// zero-allocation, atomics-based metrics registry (counters, gauges,
// log₂-bucketed histograms), a per-CPU flight recorder of recent trap
// events, and snapshot encoders (JSON and Prometheus-style text).
//
// The paper's methodology depends on being able to see what the
// production hypervisor did; its authors bolted printing and diffing
// machinery onto pKVM for exactly this reason. This package is that
// machinery made systematic: every hot path of the simulated stack
// (trap dispatch, spinlocks, page-table walks, memcache traffic, the
// oracle itself) reports here, and an oracle alarm carries the flight
// recorder's history of the trapping CPU instead of a single
// (pre, post) pair.
//
// Instrumentation is globally gated: when Disabled() reports true,
// every instrumentation site reduces to one atomic load and a branch
// (the CONFIG_NVHE_GHOST_SPEC=n analogue for telemetry). Metric
// objects are created once at registration; updating them never
// allocates.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// disabled is the global kill switch. Telemetry is enabled by default;
// SetDisabled(true) turns every instrumentation site into a single
// atomic load + branch.
var disabled atomic.Bool

// Disabled reports whether telemetry is globally off. Instrumentation
// sites check it before doing any work (including reading the clock).
func Disabled() bool { return disabled.Load() }

// SetDisabled flips the global telemetry switch.
func SetDisabled(v bool) { disabled.Store(v) }

// ---------------------------------------------------------------------
// Instruments.

// Counter is a monotonically increasing counter. The zero value is
// unusable; obtain counters from a Registry so they appear in
// snapshots.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Name returns the registered name (including any label suffix).
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NrBuckets is the number of log₂ histogram buckets: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i),
// with v=0 in bucket 0. 64-bit values always fit.
const NrBuckets = 65

// Histogram is a log₂-bucketed histogram of uint64 observations
// (typically nanoseconds). Observations are lock-free atomic adds.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NrBuckets]atomic.Uint64
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds, clamping
// negatives (a clock step) to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d.Nanoseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// ---------------------------------------------------------------------
// Registry.

// Registry is a named collection of instruments. Lookup-or-create is
// mutex-guarded (registration is boot-time work); the instruments
// themselves are lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every package-level constructor
// registers into and Snapshot() reads.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on
// first use. Names follow the Prometheus convention, with labels
// inline: `hyp_hypercall_calls_total{call="host_share_hyp"}`.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{name: name}
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered instrument, keeping the registrations
// (and any held pointers) valid. Benchmarks use it to measure deltas.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }

// Reset zeroes every instrument in the Default registry.
func Reset() { Default.Reset() }

// sortedNames returns the keys of a map in sorted order; snapshots and
// encoders emit deterministically.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
