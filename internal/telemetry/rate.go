package telemetry

import (
	"sync"
	"time"
)

// Meter converts a monotonically increasing event count into a rate
// gauge (events per second since the previous tick). The campaign
// engine feeds it its exec counter so dashboards and the flight
// recorder see execs/sec without every worker touching a shared
// timestamp. Safe for concurrent use; only one caller should Tick.
type Meter struct {
	g *Gauge

	mu        sync.Mutex
	lastCount uint64
	lastTime  time.Time
}

// NewMeter wraps a gauge. The first Tick only establishes the
// baseline; rates appear from the second Tick on.
func NewMeter(g *Gauge) *Meter {
	return &Meter{g: g}
}

// Tick records the count observed at now and sets the gauge to the
// rate over the interval since the previous tick. Out-of-order or
// zero-length intervals leave the gauge unchanged. It returns the
// rate it computed (0 on the baseline tick).
func (m *Meter) Tick(now time.Time, count uint64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastTime.IsZero() {
		m.lastTime, m.lastCount = now, count
		return 0
	}
	dt := now.Sub(m.lastTime).Seconds()
	if dt <= 0 || count < m.lastCount {
		return 0
	}
	rate := float64(count-m.lastCount) / dt
	m.lastTime, m.lastCount = now, count
	if m.g != nil {
		m.g.Set(int64(rate))
	}
	return rate
}
