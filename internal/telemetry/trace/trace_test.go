package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// withTracing runs f with the global gate in the given state,
// restoring the previous state after.
func withTracing(t testing.TB, on bool, f func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(on)
	defer SetEnabled(prev)
	f()
}

var (
	tnOuter = NewName("test.outer")
	tnInner = NewName("test.inner")
	tnEmit  = NewName("test.emit")
)

func TestNesting(t *testing.T) {
	withTracing(t, true, func() {
		tr := NewTracer(2, 16)
		so := tr.Begin(0, tnOuter)
		si := tr.Begin(0, tnInner)
		si.End()
		so.End()

		spans := tr.Spans()
		if len(spans) != 2 {
			t.Fatalf("got %d spans, want 2", len(spans))
		}
		// Inner completed first but outer started first.
		if spans[0].NameString() != "test.outer" || spans[1].NameString() != "test.inner" {
			t.Fatalf("order: %v %v", spans[0].NameString(), spans[1].NameString())
		}
		inner := spans[1]
		if inner.Depth != 1 || inner.ParentString() != "test.outer" {
			t.Errorf("inner depth=%d parent=%q, want 1/test.outer", inner.Depth, inner.ParentString())
		}
		outer := spans[0]
		if outer.Depth != 0 || outer.Parent != -1 {
			t.Errorf("outer depth=%d parent=%d, want 0/-1", outer.Depth, outer.Parent)
		}
		if outer.Dur < inner.Dur {
			t.Errorf("outer dur %v < inner dur %v", outer.Dur, inner.Dur)
		}
	})
}

func TestNameInterning(t *testing.T) {
	a := NewName("test.interned")
	b := NewName("test.interned")
	if a != b {
		t.Errorf("re-registration minted a new id: %v vs %v", a, b)
	}
	if a.String() != "test.interned" {
		t.Errorf("name round-trip: %q", a.String())
	}
	var zero Name
	if zero.String() != "?" {
		t.Errorf("zero name: %q", zero.String())
	}
}

func TestDisabledNoRecord(t *testing.T) {
	withTracing(t, false, func() {
		tr := NewTracer(1, 16)
		sp := tr.Begin(0, tnOuter)
		sp.End()
		tr.Emit(0, tnEmit, time.Now(), time.Microsecond)
		if got := tr.Spans(); len(got) != 0 {
			t.Errorf("disabled tracer recorded %d spans", len(got))
		}
	})
}

// TestDisabledZeroAlloc pins the satellite requirement: the disabled
// path must be a single atomic load + branch — in particular it must
// not allocate.
func TestDisabledZeroAlloc(t *testing.T) {
	withTracing(t, false, func() {
		tr := NewTracer(1, 16)
		allocs := testing.AllocsPerRun(1000, func() {
			sp := tr.Begin(0, tnOuter)
			sp.End()
		})
		if allocs != 0 {
			t.Errorf("disabled Begin/End allocates %.1f per op, want 0", allocs)
		}
	})
}

// TestEnabledSteadyStateZeroAlloc: once the lane stack has grown,
// recording itself must not allocate either (ring and stack are
// preallocated).
func TestEnabledSteadyStateZeroAlloc(t *testing.T) {
	withTracing(t, true, func() {
		tr := NewTracer(1, 1024)
		allocs := testing.AllocsPerRun(200, func() {
			sp := tr.Begin(0, tnOuter)
			sp.End()
		})
		if allocs != 0 {
			t.Errorf("enabled Begin/End allocates %.1f per op, want 0", allocs)
		}
	})
}

func TestNilTracer(t *testing.T) {
	withTracing(t, true, func() {
		var tr *Tracer
		sp := tr.Begin(0, tnOuter)
		sp.End()
		tr.Emit(0, tnEmit, time.Now(), time.Millisecond)
		if tr.Spans() != nil || tr.Dropped() != 0 || tr.Lanes() != 0 {
			t.Error("nil tracer not inert")
		}
	})
}

func TestEmitAndWraparound(t *testing.T) {
	withTracing(t, true, func() {
		tr := NewTracer(1, 4)
		for i := 0; i < 10; i++ {
			tr.Emit(0, tnEmit, time.Now(), time.Duration(i))
		}
		spans := tr.Spans()
		if len(spans) != 4 {
			t.Fatalf("ring retained %d, want 4", len(spans))
		}
		if tr.Dropped() != 6 {
			t.Errorf("dropped = %d, want 6", tr.Dropped())
		}
		for _, s := range spans {
			if s.Parent != -1 || s.Depth != 0 {
				t.Errorf("emitted span has parent=%d depth=%d", s.Parent, s.Depth)
			}
		}
	})
}

func TestAggregate(t *testing.T) {
	withTracing(t, true, func() {
		tr := NewTracer(1, 64)
		base := time.Now()
		tr.Emit(0, tnOuter, base, 10*time.Millisecond)
		tr.Emit(0, tnInner, base, time.Millisecond)
		tr.Emit(0, tnInner, base, time.Millisecond)
		agg := tr.Aggregate()
		if len(agg) != 2 {
			t.Fatalf("got %d aggregates, want 2", len(agg))
		}
		if agg[0].Name != "test.outer" || agg[0].Total != 10*time.Millisecond {
			t.Errorf("top aggregate: %+v", agg[0])
		}
		if agg[1].Name != "test.inner" || agg[1].Count != 2 || agg[1].Total != 2*time.Millisecond {
			t.Errorf("second aggregate: %+v", agg[1])
		}
	})
}

func TestWriteChrome(t *testing.T) {
	withTracing(t, true, func() {
		tr := NewTracer(2, 16)
		so := tr.Begin(1, tnOuter)
		si := tr.Begin(1, tnInner)
		si.End()
		so.End()

		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		var f struct {
			TraceEvents []struct {
				Name string  `json:"name"`
				Cat  string  `json:"cat"`
				Ph   string  `json:"ph"`
				TS   float64 `json:"ts"`
				Dur  float64 `json:"dur"`
				TID  int     `json:"tid"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
			t.Fatalf("chrome output is not JSON: %v", err)
		}
		if len(f.TraceEvents) != 2 {
			t.Fatalf("got %d events, want 2", len(f.TraceEvents))
		}
		for _, ev := range f.TraceEvents {
			if ev.Ph != "X" || ev.TID != 1 || ev.Cat != "test" {
				t.Errorf("bad event: %+v", ev)
			}
		}
	})
}

func TestFormatSpans(t *testing.T) {
	withTracing(t, true, func() {
		tr := NewTracer(1, 16)
		so := tr.Begin(0, tnOuter)
		si := tr.Begin(0, tnInner)
		si.End()
		so.End()
		out := FormatSpans(tr.Spans(), 0)
		if !strings.Contains(out, "test.outer") || !strings.Contains(out, "  test.inner") {
			t.Errorf("format output missing indented spans:\n%s", out)
		}
		if FormatSpans(nil, 0) != "(no spans recorded)\n" {
			t.Error("empty format")
		}
	})
}

// TestConcurrentLanes races independent lanes plus Spans readers; run
// under -race this pins the locking.
func TestConcurrentLanes(t *testing.T) {
	withTracing(t, true, func() {
		tr := NewTracer(4, 64)
		var wg sync.WaitGroup
		for lane := 0; lane < 4; lane++ {
			wg.Add(1)
			go func(lane int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					sp := tr.Begin(lane, tnOuter)
					in := tr.Begin(lane, tnInner)
					in.End()
					sp.End()
				}
			}(lane)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Spans()
				tr.Dropped()
			}
		}()
		wg.Wait()
		for _, s := range tr.Spans() {
			if s.Dur < 0 {
				t.Errorf("negative duration span: %+v", s)
			}
		}
	})
}

func BenchmarkSpanDisabled(b *testing.B) {
	prev := Enabled()
	SetEnabled(false)
	defer SetEnabled(prev)
	tr := NewTracer(1, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(0, tnOuter)
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	tr := NewTracer(1, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(0, tnOuter)
		sp.End()
	}
}
