// Package trace is the hypervisor's span tracer: begin/end intervals
// with parent nesting, recorded into fixed-size per-lane rings the way
// the flight recorder keeps per-CPU trap rings. Where the metrics
// registry answers "how often and how long on average", spans answer
// "where did *this* execution's time actually go" — the attribution
// question ROADMAP Open item 1 (snapshot/CoW boot) needs a quantified
// baseline for.
//
// A lane is a serialisation domain: one goroutine begins and ends
// spans on a lane at a time, so the lane's open-span stack gives every
// span its parent for free. The campaign engine assigns one lane per
// worker (each worker drives its private system single-threaded);
// standalone tools use lane 0. Concurrent use of one lane is
// memory-safe (the lane is mutex-guarded) but garbles nesting — the
// same contract as interleaving two commentaries in one logbook.
// Cross-goroutine emitters (the spinlock slow-acquisition path) bypass
// the stack with Emit, which records a completed parentless span.
//
// Tracing is globally gated and off by default: when Enabled() is
// false every Begin/End reduces to one atomic load and a branch, with
// zero allocation — the same discipline as telemetry.Disabled(), and
// benchmarked the same way (BenchmarkHypercallTraceOn/Off). Span
// names are interned once via NewName (init/constructor scope only,
// enforced by ghostlint's telemetrycheck); the hot path carries only
// the integer ID.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global gate. Tracing is opt-in: profile runs and the
// -trace-out / -spans flags flip it on.
var enabled atomic.Bool

// Enabled reports whether span recording is globally on.
func Enabled() bool { return enabled.Load() }

// SetEnabled flips the global tracing switch.
func SetEnabled(v bool) { enabled.Store(v) }

// Name is an interned span name. The zero value is valid and names the
// reserved "?" entry, so a forgotten registration cannot crash the hot
// path.
type Name struct{ id int32 }

// names is the global intern table. Registration is boot-time work
// (mutex + map); the hot path never touches it.
var names = struct {
	mu   sync.Mutex
	byID []string
	ids  map[string]int32
}{
	byID: []string{"?"},
	ids:  map[string]int32{"?": 0},
}

// NewName interns a span name, returning the existing entry when the
// string was registered before — per-VM lock names re-register on
// every boot and must not grow the table. Like metric registration,
// this allocates and locks; call it from init or constructor scope
// only (telemetrycheck enforces this).
func NewName(s string) Name {
	names.mu.Lock()
	defer names.mu.Unlock()
	if id, ok := names.ids[s]; ok {
		return Name{id: id}
	}
	id := int32(len(names.byID))
	names.byID = append(names.byID, s)
	names.ids[s] = id
	return Name{id: id}
}

// String returns the interned name.
func (n Name) String() string {
	names.mu.Lock()
	defer names.mu.Unlock()
	if int(n.id) < len(names.byID) {
		return names.byID[n.id]
	}
	return "?"
}

// Span is one completed interval on a lane. Start is the offset from
// the tracer's construction; Parent is the name of the innermost span
// open on the lane when this one began (-1 when none — a root span or
// an Emit).
type Span struct {
	Name   Name
	Lane   int
	Start  time.Duration
	Dur    time.Duration
	Depth  int
	Parent int32
}

// NameString returns the span's interned name.
func (s Span) NameString() string { return s.Name.String() }

// ParentString returns the parent span's name, or "" for roots.
func (s Span) ParentString() string {
	if s.Parent < 0 {
		return ""
	}
	return Name{id: s.Parent}.String()
}

// open is one in-flight span on a lane's stack.
type open struct {
	name  Name
	start time.Duration
}

// lane is one serialisation domain: an open-span stack plus a
// fixed-size completed-span ring, both under one mutex (uncontended
// when the lane is driven by a single goroutine, its intended use).
type lane struct {
	mu    sync.Mutex
	stack []open
	buf   []Span
	n     uint64 // completed spans ever recorded on this lane
}

// DefaultDepth is the per-lane ring capacity when NewTracer is given
// zero — enough for live introspection of recent activity; profile
// runs size their rings to hold the whole campaign.
const DefaultDepth = 4096

// Tracer records spans into per-lane rings. A nil *Tracer is a valid
// disabled tracer: Begin/End/Emit are no-ops, so instrumented code
// threads one pointer regardless of configuration (the *arch.TLB
// convention).
type Tracer struct {
	lanes []lane
	base  time.Time
}

// NewTracer builds a tracer with nrLanes rings of the given depth
// (DefaultDepth when depth <= 0).
func NewTracer(nrLanes, depth int) *Tracer {
	if nrLanes <= 0 {
		nrLanes = 1
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	t := &Tracer{lanes: make([]lane, nrLanes), base: time.Now()}
	for i := range t.lanes {
		t.lanes[i].buf = make([]Span, depth)
		t.lanes[i].stack = make([]open, 0, 32)
	}
	return t
}

// Lanes returns the lane count (0 for a nil tracer).
func (t *Tracer) Lanes() int {
	if t == nil {
		return 0
	}
	return len(t.lanes)
}

// SpanHandle is the value returned by Begin and consumed by End. The
// zero value (from a disabled or nil tracer) is a valid no-op handle,
// so callers need no conditionals around the pair.
type SpanHandle struct {
	t    *Tracer
	lane int32
	ok   bool
}

// Begin opens a span on a lane. When tracing is disabled (or the
// tracer is nil, or the lane out of range) it is one atomic load and a
// branch, allocation-free, and returns the no-op handle.
func (t *Tracer) Begin(laneID int, n Name) SpanHandle {
	if t == nil || !enabled.Load() {
		return SpanHandle{}
	}
	if laneID < 0 || laneID >= len(t.lanes) {
		return SpanHandle{}
	}
	l := &t.lanes[laneID]
	l.mu.Lock()
	l.stack = append(l.stack, open{name: n, start: time.Since(t.base)})
	l.mu.Unlock()
	return SpanHandle{t: t, lane: int32(laneID), ok: true}
}

// End closes the innermost open span on the handle's lane, recording
// the completed span into the lane ring. End on the zero handle is a
// no-op, so a span begun while tracing was off ends silently even if
// tracing was enabled in between.
func (h SpanHandle) End() {
	if !h.ok {
		return
	}
	l := &h.t.lanes[h.lane]
	now := time.Since(h.t.base)
	l.mu.Lock()
	if len(l.stack) == 0 {
		l.mu.Unlock()
		return
	}
	o := l.stack[len(l.stack)-1]
	l.stack = l.stack[:len(l.stack)-1]
	parent := int32(-1)
	if len(l.stack) > 0 {
		parent = l.stack[len(l.stack)-1].name.id
	}
	l.record(Span{
		Name:   o.name,
		Lane:   int(h.lane),
		Start:  o.start,
		Dur:    now - o.start,
		Depth:  len(l.stack),
		Parent: parent,
	})
	l.mu.Unlock()
}

// Emit records an already-measured span without touching the lane's
// open stack: the cross-goroutine path (spinlock slow acquisitions
// measure on the waiting goroutine, which owns no lane). The span is
// parentless at depth 0.
func (t *Tracer) Emit(laneID int, n Name, start time.Time, dur time.Duration) {
	if t == nil || !enabled.Load() {
		return
	}
	if laneID < 0 || laneID >= len(t.lanes) {
		return
	}
	l := &t.lanes[laneID]
	l.mu.Lock()
	l.record(Span{Name: n, Lane: laneID, Start: start.Sub(t.base), Dur: dur, Parent: -1})
	l.mu.Unlock()
}

// record appends to the ring; caller holds the lane mutex.
func (l *lane) record(s Span) {
	l.buf[l.n%uint64(len(l.buf))] = s
	l.n++
}

// Dropped returns the number of completed spans lost to ring
// wraparound across all lanes. Profile runs size their rings so this
// stays zero; a non-zero value marks an aggregate as partial.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var dropped uint64
	for i := range t.lanes {
		l := &t.lanes[i]
		l.mu.Lock()
		if depth := uint64(len(l.buf)); l.n > depth {
			dropped += l.n - depth
		}
		l.mu.Unlock()
	}
	return dropped
}

// Spans returns every retained completed span, across all lanes,
// sorted by start time. Open spans are not included.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for i := range t.lanes {
		l := &t.lanes[i]
		l.mu.Lock()
		depth := uint64(len(l.buf))
		n := l.n
		if n > depth {
			n = depth
		}
		for j := l.n - n; j < l.n; j++ {
			out = append(out, l.buf[j%depth])
		}
		l.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Lane < out[j].Lane
	})
	return out
}

// NameAgg is one span name's aggregate over the retained spans.
type NameAgg struct {
	Name  string
	Count uint64
	Total time.Duration
}

// Aggregate folds the retained spans into per-name totals, sorted by
// descending total time. It is derived from the rings, so wraparound
// (see Dropped) makes it a lower bound.
func (t *Tracer) Aggregate() []NameAgg {
	byName := map[string]*NameAgg{}
	for _, s := range t.Spans() {
		name := s.NameString()
		a, ok := byName[name]
		if !ok {
			a = &NameAgg{Name: name}
			byName[name] = a
		}
		a.Count++
		a.Total += s.Dur
	}
	out := make([]NameAgg, 0, len(byName))
	for _, a := range byName {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}
