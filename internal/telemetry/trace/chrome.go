package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Chrome trace-event export: the "X" (complete-event) form of the
// Trace Event Format, loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing. Lanes map to tids, so each campaign worker gets
// its own track; ts/dur are microseconds by that format's definition.

// chromeEvent is one complete event in the Trace Event Format.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeCategory derives the event category from the span name's
// subsystem prefix ("pgtable.mutate" -> "pgtable"), so Perfetto can
// filter per layer.
func chromeCategory(name string) string {
	if i := strings.IndexAny(name, ".:"); i > 0 {
		return name[:i]
	}
	return name
}

// WriteChrome encodes the retained spans as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	f := chromeFile{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ns"}
	for _, s := range spans {
		name := s.NameString()
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: name,
			Cat:  chromeCategory(name),
			Ph:   "X",
			TS:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  s.Lane,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// FormatSpans renders recent spans as text, one per line, indented by
// nesting depth — the /spans endpoint's payload and a quick console
// dump. Only the last max spans are rendered (all when max <= 0).
func FormatSpans(spans []Span, max int) string {
	if max > 0 && len(spans) > max {
		spans = spans[len(spans)-max:]
	}
	var b strings.Builder
	for _, s := range spans {
		fmt.Fprintf(&b, "lane%d %12v %s%s %v\n",
			s.Lane, s.Start, strings.Repeat("  ", s.Depth), s.NameString(), s.Dur)
	}
	if b.Len() == 0 {
		return "(no spans recorded)\n"
	}
	return b.String()
}
