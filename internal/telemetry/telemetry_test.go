package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	// 90 small observations and 10 large: p50 must land in the small
	// range, p99 in the large.
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket 7 (64..127)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000) // bucket 17
	}
	s := r.Snapshot()
	hs, ok := s.Histogram("lat_ns")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 100 || hs.Sum != 90*100+10*100000 {
		t.Errorf("count=%d sum=%d", hs.Count, hs.Sum)
	}
	if p50 := hs.Quantile(0.5); p50 != 127 {
		t.Errorf("p50 = %d, want 127", p50)
	}
	if p99 := hs.Quantile(0.99); p99 != 131071 {
		t.Errorf("p99 = %d, want 131071", p99)
	}
	if hs.Quantile(1.0) != 131071 {
		t.Errorf("p100 = %d", hs.Quantile(1.0))
	}
	if m := hs.Mean(); m < 100 || m > 100000 {
		t.Errorf("mean = %v out of range", m)
	}
}

func TestHistogramZeroAndEmpty(t *testing.T) {
	var empty HistSnap
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram should quantile/mean to 0")
	}
	r := NewRegistry()
	h := r.Histogram("h")
	h.Observe(0)
	hs, _ := r.Snapshot().Histogram("h")
	if hs.Quantile(0.5) != 0 {
		t.Errorf("all-zero observations: p50 = %d", hs.Quantile(0.5))
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(`calls_total{call="share"}`).Add(3)
	r.Gauge("depth").Set(-2)
	r.Histogram("lat").Observe(1000)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Counter(`calls_total{call="share"}`); !ok || v != 3 {
		t.Errorf("counter after round trip: %d ok=%v", v, ok)
	}
	if v, ok := back.Gauge("depth"); !ok || v != -2 {
		t.Errorf("gauge after round trip: %d ok=%v", v, ok)
	}
	h, ok := back.Histogram("lat")
	if !ok || h.Count != 1 {
		t.Errorf("histogram after round trip: %+v ok=%v", h, ok)
	}
}

func TestPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter(`hc_total{call="share"}`).Add(2)
	r.Gauge("pages").Set(5)
	r.Histogram(`lat_ns{reason="hvc"}`).Observe(100)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE hc_total counter",
		`hc_total{call="share"} 2`,
		"# TYPE pages gauge",
		"pages 5",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{reason="hvc",le="127"} 1`,
		`lat_ns_bucket{reason="hvc",le="+Inf"} 1`,
		`lat_ns_sum{reason="hvc"} 100`,
		`lat_ns_count{reason="hvc"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	// Hostile label values: a backslash, an embedded quote, a newline,
	// and all three at once across two labels. These arrive for real
	// via lock component and bug names interpolated into metric names.
	r.Counter(`evil_total{path="C:\temp"}`).Add(1)
	r.Counter(`evil_total{msg="he said "hi" loudly"}`).Add(2)
	r.Gauge("evil_gauge{note=\"line1\nline2\"}").Set(3)
	r.Histogram(`evil_ns{a="back\slash",b="qu"ote"}`).Observe(64)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`evil_total{path="C:\\temp"} 1`,
		`evil_total{msg="he said \"hi\" loudly"} 2`,
		`evil_gauge{note="line1\nline2"} 3`,
		`evil_ns_bucket{a="back\\slash",b="qu\"ote",le="127"} 1`,
		`evil_ns_sum{a="back\\slash",b="qu\"ote"} 64`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// No sample line may contain a raw (unescaped) newline inside its
	// label block: every line must still parse as name{...} value.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Errorf("torn exposition line (no value separator): %q", line)
		}
	}
}

func TestEscapeLabelsPassthrough(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{``, ``},
		{`k="v"`, `k="v"`},
		{`a="x",b="y"`, `a="x",b="y"`},
		{`garbage`, `garbage`},                  // not k="v" shaped
		{`k="unterminated`, `k="unterminated"`}, // repaired, value escaped
	} {
		if got := escapeLabels(tc.in); got != tc.want {
			t.Errorf("escapeLabels(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(7)
	h.Observe(42)
	r.Reset()
	if c.Value() != 0 {
		t.Error("counter not reset")
	}
	hs, _ := r.Snapshot().Histogram("h")
	if hs.Count != 0 || hs.Sum != 0 || len(hs.Buckets) != 0 {
		t.Errorf("histogram not reset: %+v", hs)
	}
	// Held pointers stay registered.
	c.Inc()
	if v, _ := r.Snapshot().Counter("c"); v != 1 {
		t.Error("counter unusable after reset")
	}
}

func TestDisabledFlag(t *testing.T) {
	if Disabled() {
		t.Fatal("telemetry should default to enabled")
	}
	SetDisabled(true)
	if !Disabled() {
		t.Error("SetDisabled(true) not observed")
	}
	SetDisabled(false)
}

func TestFlightRecorderRingAndDump(t *testing.T) {
	fr := NewFlightRecorder(2, 4)
	for i := 0; i < 6; i++ {
		fr.Record(0, TrapEvent{Kind: "hvc", Name: "host_share_hyp", Ret: int64(i)})
	}
	fr.Record(1, TrapEvent{Kind: "irq"})
	d0 := fr.Dump(0)
	if len(d0) != 4 {
		t.Fatalf("dump depth = %d, want 4", len(d0))
	}
	// Oldest first, and only the newest 4 of 6 survive.
	if d0[0].Ret != 2 || d0[3].Ret != 5 {
		t.Errorf("ring order wrong: first=%d last=%d", d0[0].Ret, d0[3].Ret)
	}
	for i := 1; i < len(d0); i++ {
		if d0[i].Seq <= d0[i-1].Seq {
			t.Errorf("sequence not increasing: %d then %d", d0[i-1].Seq, d0[i].Seq)
		}
	}
	if len(fr.Dump(1)) != 1 {
		t.Error("cpu 1 dump wrong")
	}
	if fr.Dump(7) != nil {
		t.Error("out-of-range dump should be nil")
	}
	all := fr.DumpAll()
	if len(all) != 2 || len(all[0]) != 4 {
		t.Errorf("DumpAll shape wrong: %d cpus", len(all))
	}
	if s := FormatTrapEvents(d0); !strings.Contains(s, "host_share_hyp") {
		t.Errorf("formatted dump missing event name:\n%s", s)
	}
	if s := FormatTrapEvents(nil); !strings.Contains(s, "empty") {
		t.Errorf("empty dump format: %q", s)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(4, 16)
	var wg sync.WaitGroup
	for cpu := 0; cpu < 4; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fr.Record(cpu, TrapEvent{Kind: "hvc", Dur: time.Microsecond})
				if i%17 == 0 {
					_ = fr.Dump((cpu + 1) % 4)
				}
			}
		}(cpu)
	}
	wg.Wait()
	for cpu := 0; cpu < 4; cpu++ {
		if len(fr.Dump(cpu)) != 16 {
			t.Errorf("cpu %d ring not full", cpu)
		}
	}
}

// TestFlightRecorderWraparoundSeqOrder hammers single rings from many
// goroutines through multiple wraparounds while dumping concurrently,
// and requires every dump's Seq column to be strictly increasing. The
// recorder once stamped Seq before taking the ring mutex; a preempted
// recorder could then slip an older Seq in behind a newer one and the
// dump came out torn. Run under -race this also exercises the
// dump-during-record paths.
func TestFlightRecorderWraparoundSeqOrder(t *testing.T) {
	const (
		nrCPUs     = 2
		depth      = 8
		goroutines = 4
		perG       = 500 // 4*500 per CPU = 250 wraparounds of an 8-deep ring
	)
	fr := NewFlightRecorder(nrCPUs, depth)
	var recorders, dumpers sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent dumpers: torn writes would also show up as racy
	// half-copied events under -race.
	for cpu := 0; cpu < nrCPUs; cpu++ {
		dumpers.Add(1)
		go func(cpu int) {
			defer dumpers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i, evs := 1, fr.Dump(cpu); i < len(evs); i++ {
					if evs[i].Seq <= evs[i-1].Seq {
						t.Errorf("cpu %d dump torn mid-run: seq %d then %d", cpu, evs[i-1].Seq, evs[i].Seq)
						return
					}
				}
			}
		}(cpu)
	}
	for g := 0; g < goroutines; g++ {
		recorders.Add(1)
		go func(g int) {
			defer recorders.Done()
			for i := 0; i < perG; i++ {
				for cpu := 0; cpu < nrCPUs; cpu++ {
					fr.Record(cpu, TrapEvent{Kind: "hvc", Ret: int64(g*perG + i)})
				}
			}
		}(g)
	}
	recorders.Wait()
	close(stop)
	dumpers.Wait()
	for cpu := 0; cpu < nrCPUs; cpu++ {
		evs := fr.Dump(cpu)
		if len(evs) != depth {
			t.Fatalf("cpu %d ring not full after wraparound: %d events", cpu, len(evs))
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq <= evs[i-1].Seq {
				t.Errorf("cpu %d final dump out of order: seq %d then %d", cpu, evs[i-1].Seq, evs[i].Seq)
			}
		}
	}
}

func TestNilFlightRecorder(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(0, TrapEvent{}) // must not panic
	if fr.Dump(0) != nil || fr.DumpAll() != nil {
		t.Error("nil recorder should dump nil")
	}
}
