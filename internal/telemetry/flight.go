package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TrapEvent is one flight-recorder entry: a compact record of a trap
// the hypervisor handled. Fields are generic so the recorder stays
// independent of the hypervisor package; callers fill the symbolic
// names (hypercall name, errno) from their own String methods, which
// return constant strings and therefore do not allocate.
type TrapEvent struct {
	// Seq is the global sequence number across all CPUs; gaps in a
	// single CPU's dump are traps taken on other CPUs.
	Seq uint64 `json:"seq"`
	// CPU is the hardware thread that took the trap.
	CPU int `json:"cpu"`
	// Kind is the exit reason ("hvc", "mem-abort", "irq").
	Kind string `json:"kind"`
	// Name is the symbolic event name (hypercall name, or
	// "host_mem_abort").
	Name string `json:"name"`
	// Args are the hypercall arguments x1-x4, or the fault address and
	// write flag for aborts.
	Args [4]uint64 `json:"args"`
	// Ret is the raw x1 return value at trap exit.
	Ret int64 `json:"ret"`
	// RetStr is the symbolic return (errno name, run-exit name, or a
	// VM handle).
	RetStr string `json:"retStr"`
	// Dur is the wall time spent inside the trap handler.
	Dur time.Duration `json:"dur"`
}

func (e TrapEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d cpu%d %s %s(", e.Seq, e.CPU, e.Kind, e.Name)
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%#x", a)
	}
	fmt.Fprintf(&b, ") = %s (%v)", e.RetStr, e.Dur)
	return b.String()
}

// flightRing is one CPU's fixed-size ring. Traps on a CPU are recorded
// by that CPU's goroutine only, but dumps (taken when an oracle alarm
// fires, possibly while other CPUs keep trapping) may read
// concurrently, so the ring carries its own mutex — uncontended in
// steady state.
type flightRing struct {
	mu  sync.Mutex
	buf []TrapEvent
	n   uint64 // total events ever recorded on this CPU
}

// FlightRecorder keeps the last N trap events per CPU. It is the
// forensic complement of the oracle: when a spec mismatch fires, the
// failure report attaches the trapping CPU's recent history instead of
// just the single failing (pre, post) pair.
type FlightRecorder struct {
	cpus []flightRing
	seq  atomic.Uint64
}

// DefaultFlightDepth is the per-CPU ring capacity used by the
// hypervisor.
const DefaultFlightDepth = 64

// NewFlightRecorder builds a recorder with a depth-entry ring per CPU.
func NewFlightRecorder(nrCPUs, depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	fr := &FlightRecorder{cpus: make([]flightRing, nrCPUs)}
	for i := range fr.cpus {
		fr.cpus[i].buf = make([]TrapEvent, depth)
	}
	return fr
}

// Record appends an event to cpu's ring, stamping its global sequence
// number. It is a no-op for out-of-range CPUs.
func (fr *FlightRecorder) Record(cpu int, ev TrapEvent) {
	if fr == nil || cpu < 0 || cpu >= len(fr.cpus) {
		return
	}
	ev.CPU = cpu
	r := &fr.cpus[cpu]
	r.mu.Lock()
	// The sequence stamp must happen under the ring mutex: stamping
	// first and locking second lets a preempted recorder slip an older
	// Seq in behind a newer one, and the dump — which reports ring
	// order — comes out torn, with Seq running backwards mid-history.
	ev.Seq = fr.seq.Add(1)
	r.buf[r.n%uint64(len(r.buf))] = ev
	r.n++
	r.mu.Unlock()
}

// Reset discards all recorded history. A snapshot restore calls this
// so a failure's forensic dump shows only the execution that failed,
// not traps bled in from earlier executions on the same long-lived
// system. The global sequence counter keeps counting up — Seq
// monotonicity over the recorder's lifetime is what the wraparound
// stress test asserts.
func (fr *FlightRecorder) Reset() {
	if fr == nil {
		return
	}
	for i := range fr.cpus {
		r := &fr.cpus[i]
		r.mu.Lock()
		r.n = 0
		r.mu.Unlock()
	}
}

// Dump returns cpu's recorded events, oldest first (at most the ring
// depth). Nil recorder or out-of-range CPU dumps empty.
func (fr *FlightRecorder) Dump(cpu int) []TrapEvent {
	if fr == nil || cpu < 0 || cpu >= len(fr.cpus) {
		return nil
	}
	r := &fr.cpus[cpu]
	r.mu.Lock()
	defer r.mu.Unlock()
	depth := uint64(len(r.buf))
	n := r.n
	if n > depth {
		n = depth
	}
	out := make([]TrapEvent, 0, n)
	for i := r.n - n; i < r.n; i++ {
		out = append(out, r.buf[i%depth])
	}
	return out
}

// DumpAll returns every CPU's events, indexed by CPU.
func (fr *FlightRecorder) DumpAll() [][]TrapEvent {
	if fr == nil {
		return nil
	}
	out := make([][]TrapEvent, len(fr.cpus))
	for i := range fr.cpus {
		out[i] = fr.Dump(i)
	}
	return out
}

// FormatTrapEvents renders a dump for a failure report, one event per
// line, oldest first, ending with a newline.
func FormatTrapEvents(evs []TrapEvent) string {
	if len(evs) == 0 {
		return "  (flight recorder empty)\n"
	}
	var b strings.Builder
	for _, e := range evs {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
