package telemetry

import (
	"testing"
	"time"
)

func TestMeterRate(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_rate")
	m := NewMeter(g)

	t0 := time.Unix(1000, 0)
	if rate := m.Tick(t0, 100); rate != 0 {
		t.Errorf("baseline tick rate = %v, want 0", rate)
	}
	if rate := m.Tick(t0.Add(2*time.Second), 300); rate != 100 {
		t.Errorf("rate = %v, want 100", rate)
	}
	if g.Value() != 100 {
		t.Errorf("gauge = %d, want 100", g.Value())
	}
	// Counter reset (count goes backwards) leaves the gauge alone.
	if rate := m.Tick(t0.Add(3*time.Second), 50); rate != 0 {
		t.Errorf("rate after reset = %v, want 0", rate)
	}
	if g.Value() != 100 {
		t.Errorf("gauge after reset = %d, want 100", g.Value())
	}
}
