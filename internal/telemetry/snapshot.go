package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// CounterSnap is one counter's value at snapshot time.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's value at snapshot time.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistSnap is one histogram's state at snapshot time. Buckets[i]
// counts observations v with bits.Len64(v) == i (log₂ buckets);
// trailing zero buckets are trimmed.
type HistSnap struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []uint64 `json:"buckets"`
}

// BucketUpper returns the inclusive upper bound of bucket i: the
// largest value v with bits.Len64(v) == i.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile returns an upper-bound estimate of the q-th quantile
// (0 < q <= 1): the upper edge of the bucket holding the q-th
// observation. Returns 0 for an empty histogram.
func (h HistSnap) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(len(h.Buckets) - 1)
}

// Mean returns the arithmetic mean of the observations.
func (h HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snap is a point-in-time copy of a registry, ordered by name.
type Snap struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snap {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snap
	for _, n := range sortedNames(r.counters) {
		s.Counters = append(s.Counters, CounterSnap{Name: n, Value: r.counters[n].Value()})
	}
	for _, n := range sortedNames(r.gauges) {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: n, Value: r.gauges[n].Value()})
	}
	for _, n := range sortedNames(r.histograms) {
		h := r.histograms[n]
		hs := HistSnap{Name: n, Count: h.count.Load(), Sum: h.sum.Load()}
		last := -1
		var buckets [NrBuckets]uint64
		for i := range h.buckets {
			buckets[i] = h.buckets[i].Load()
			if buckets[i] != 0 {
				last = i
			}
		}
		hs.Buckets = append([]uint64(nil), buckets[:last+1]...)
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// Snapshot copies the Default registry's current values.
func Snapshot() Snap { return Default.Snapshot() }

// Counter returns the snapshotted value of a named counter.
func (s Snap) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the snapshotted value of a named gauge.
func (s Snap) Gauge(name string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the snapshot of a named histogram.
func (s Snap) Histogram(name string) (HistSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistSnap{}, false
}

// WriteJSON encodes the snapshot as JSON.
func (s Snap) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnap decodes a snapshot previously written with WriteJSON.
func ReadSnap(r io.Reader) (Snap, error) {
	var s Snap
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snap{}, err
	}
	return s, nil
}

// splitName separates a registered name into its base metric name and
// inline label block: `a_total{x="y"}` -> (`a_total`, `x="y"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double-quote and newline are the three
// characters that would otherwise terminate or corrupt the sample line.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeLabels rewrites a registered inline label block (`k="v",...`)
// with every value escaped. Registered values are raw — lock component
// names and bug identifiers flow in verbatim — so a value's closing
// quote is taken to be the one followed by `,` or the end of the
// block; hostile quotes, backslashes and newlines inside the value
// then survive as data instead of truncating the exposition line.
func escapeLabels(labels string) string {
	var b strings.Builder
	i := 0
	for i < len(labels) {
		eq := strings.IndexByte(labels[i:], '=')
		if eq < 0 || i+eq+1 >= len(labels) || labels[i+eq+1] != '"' {
			// Not a k="v" shape; pass the remainder through untouched.
			b.WriteString(labels[i:])
			break
		}
		b.WriteString(labels[i : i+eq+2]) // key, '=', opening quote
		j := i + eq + 2
		end := j
		for end < len(labels) && !(labels[end] == '"' && (end+1 == len(labels) || labels[end+1] == ',')) {
			end++
		}
		b.WriteString(escapeLabelValue(labels[j:end]))
		b.WriteByte('"')
		i = end + 1 // past the closing quote (or block end when unterminated)
		if i < len(labels) && labels[i] == ',' {
			b.WriteByte(',')
			i++
		}
	}
	return b.String()
}

// WritePrometheus encodes the snapshot in the Prometheus text
// exposition format. Histograms are emitted with cumulative le
// buckets at the log₂ upper bounds. Label values are escaped on the
// way out (see escapeLabels) — the registry stores them raw.
func (s Snap) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{}
	typeLine := func(base, kind string) {
		if !typed[base] {
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
			typed[base] = true
		}
	}
	for _, c := range s.Counters {
		base, labels := splitName(c.Name)
		labels = escapeLabels(labels)
		typeLine(base, "counter")
		if labels != "" {
			labels = "{" + labels + "}"
		}
		fmt.Fprintf(w, "%s%s %d\n", base, labels, c.Value)
	}
	for _, g := range s.Gauges {
		base, labels := splitName(g.Name)
		labels = escapeLabels(labels)
		typeLine(base, "gauge")
		if labels != "" {
			labels = "{" + labels + "}"
		}
		fmt.Fprintf(w, "%s%s %d\n", base, labels, g.Value)
	}
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		labels = escapeLabels(labels)
		typeLine(base, "histogram")
		sep := ""
		if labels != "" {
			sep = ","
		}
		var cum uint64
		for i, b := range h.Buckets {
			cum += b
			if b == 0 {
				continue
			}
			fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", base, labels, sep, BucketUpper(i), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", base, labels, sep, h.Count)
		lb := ""
		if labels != "" {
			lb = "{" + labels + "}"
		}
		fmt.Fprintf(w, "%s_sum%s %d\n", base, lb, h.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", base, lb, h.Count)
	}
	return nil
}
