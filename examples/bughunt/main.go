// bughunt: inject each of the paper's bugs — the five real pKVM bugs
// of §6 and the synthetic discrimination bugs of §5 — run the minimal
// scenario that exposes it, and show the oracle's verdict, including
// the abstract-state diff for one example.
//
//	go run ./examples/bughunt
package main

import (
	"fmt"

	"ghostspec/internal/bugdemo"
)

func main() {
	fmt.Println("hunting: every injectable bug, one fresh system each")
	fmt.Println()

	var sampleDiff string
	detected, missed := 0, 0
	for _, r := range bugdemo.DetectAll() {
		origin := "synthetic (§5)"
		if r.Demo.Real {
			origin = "real pKVM bug (§6)"
		}
		verdict := "DETECTED"
		if r.Detected {
			detected++
		} else {
			verdict = "MISSED"
			missed++
		}
		fmt.Printf("%-26s %-9s %s\n", r.Demo.Bug, verdict, origin)
		fmt.Printf("    %s\n", r.Demo.Description)
		if len(r.Alarms) > 0 {
			fmt.Printf("    first alarm: [%v] on %s\n", r.Alarms[0].Kind, r.Alarms[0].Call.String())
			if sampleDiff == "" && r.Alarms[0].Detail != "" {
				sampleDiff = fmt.Sprintf("sample oracle report for %s:\n%s", r.Demo.Bug, r.Alarms[0].Detail)
			}
		}
		if r.DriveErr != nil {
			fmt.Printf("    scenario error: %v\n", r.DriveErr)
		}
		fmt.Println()
	}

	if sampleDiff != "" {
		fmt.Println(sampleDiff)
	}
	fmt.Printf("result: %d detected, %d missed\n", detected, missed)
}
