// vm-lifecycle: the full protected-VM tour under the oracle — create,
// donate, top up, load, map memory, run guest traffic including a
// virtio-style shared ring, tear down, and reclaim every page, with
// the ghost specification checking each step.
//
//	go run ./examples/vm-lifecycle
package main

import (
	"fmt"
	"log"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

func step(format string, args ...any) { fmt.Printf("== "+format+"\n", args...) }

func main() {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rec := ghost.Attach(hv)
	rec.OnFailure = func(f ghost.Failure) { fmt.Println("ALARM:", f) }
	d := proxy.New(hv)

	step("create a protected VM (host donates %d pages for metadata + stage 2 root)", hyp.InitVMDonation(1))
	h, donated, err := d.InitVM(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   handle %v, donated frames %#x..%#x\n", h, uint64(donated[0]), uint64(donated[len(donated)-1]))

	step("initialise vCPU 0 and top up its memcache")
	if err := d.InitVCPU(0, h, 0); err != nil {
		log.Fatal(err)
	}
	mc, err := d.Topup(0, h, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d pages donated through the linked-list topup path\n", len(mc))

	step("load the vCPU on CPU 0 and map guest memory")
	if err := d.VCPULoad(0, h, 0); err != nil {
		log.Fatal(err)
	}
	var guestPages []arch.PFN
	for gfn := uint64(16); gfn < 20; gfn++ {
		pfn, _ := d.AllocPage()
		if err := d.MapGuest(0, pfn, gfn); err != nil {
			log.Fatal(err)
		}
		guestPages = append(guestPages, pfn)
	}
	fmt.Printf("   gfns 16..19 mapped; host can no longer touch those frames\n")
	if ok, _ := d.Access(1, arch.IPA(guestPages[0].Phys()), false); ok {
		log.Fatal("isolation broken: host read guest memory")
	}

	step("guest runs: writes its memory, shares a virtio ring with the host")
	d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestAccess, IPA: 17 << arch.PageShift, Write: true, Value: 0xabcd})
	if _, err := d.VCPURun(0); err != nil {
		log.Fatal(err)
	}
	ring := arch.IPA(16 << arch.PageShift)
	d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestShareHost, IPA: ring})
	if _, err := d.VCPURun(0); err != nil {
		log.Fatal(err)
	}
	if e := hyp.ErrnoFromReg(hv.CPUs[0].GuestRegs[0]); e != hyp.OK {
		log.Fatalf("guest_share_host: %v", e)
	}
	if err := d.Write64(1, arch.IPA(guestPages[0].Phys()), 0x5555); err != nil {
		log.Fatal("host cannot write the shared ring: ", err)
	}
	fmt.Println("   host wrote the shared ring through its borrowed mapping")

	step("guest faults on unmapped memory; the exit carries the IPA to the host")
	d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestAccess, IPA: 40 << arch.PageShift, Write: true})
	ex, err := d.VCPURun(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   exit code %d, ipa %#x, write=%v\n", ex.Code, uint64(ex.IPA), ex.Write)

	step("guest revokes the share, vCPU is put, VM torn down")
	d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestUnshareHost, IPA: ring})
	if _, err := d.VCPURun(0); err != nil {
		log.Fatal(err)
	}
	if err := d.VCPUPut(0); err != nil {
		log.Fatal(err)
	}
	if err := d.TeardownVM(0, h); err != nil {
		log.Fatal(err)
	}

	step("host reclaims every page (hypervisor scrubs each first)")
	reclaimed := 0
	for _, set := range [][]arch.PFN{donated, guestPages, mc} {
		for _, pfn := range set {
			if err := d.ReclaimPage(0, pfn); err != nil {
				log.Fatalf("reclaim %#x: %v", uint64(pfn), err)
			}
			reclaimed++
		}
	}
	fmt.Printf("   %d pages reclaimed; host owns its memory again\n", reclaimed)
	if got := hv.Mem.Read64(guestPages[0].Phys()); got != 0 {
		log.Fatalf("guest data leaked through reclaim: %#x", got)
	}
	fmt.Println("   guest data scrubbed: reclaimed ring reads as zero")

	st := rec.Stats()
	fmt.Printf("\noracle: %d traps, %d checks, %d passed, %d alarms\n",
		st.Traps, st.Checks, st.Passed, st.Failures)
}
