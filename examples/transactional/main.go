// transactional: the extension beyond the paper. The paper notes that
// a few pKVM hypercalls execute in phases — releasing and retaking
// locks mid-call — and that its monolithic pre/post checking does not
// handle them: "Handling that would need a more explicitly
// transactional style of instrumentation, which, although not done,
// seems perfectly feasible." This example demonstrates that style,
// implemented here: the host_share_hyp_range hypercall takes one lock
// phase per page, the recorder captures every lock session, and the
// oracle checks each phase transition independently — so another CPU's
// legitimate traffic *between* phases raises no false alarm, while a
// genuine phase bug is still caught.
//
//	go run ./examples/transactional
package main

import (
	"fmt"
	"log"
	"sync"

	"ghostspec/internal/arch"
	"ghostspec/internal/bugdemo"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

func main() {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rec := ghost.Attach(hv)
	d := proxy.New(hv)

	fmt.Println("1. phased share of 8 pages: 8 host + 8 hyp lock sessions, each checked")
	base := arch.PhysToPFN(hv.HostMemStart()) + 100
	if err := d.ShareHypRange(0, base, 8); err != nil {
		log.Fatal(err)
	}
	st := rec.Stats()
	fmt.Printf("   oracle: %d checks, %d passed, %d alarms\n", st.Checks, st.Passed, st.Failures)

	fmt.Println("\n2. interference between phases: CPU 1 churns shares while CPU 0 runs long ranges")
	churn := arch.PhysToPFN(hv.HostMemStart()) + 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rangeBase := arch.PhysToPFN(hv.HostMemStart()) + 200
		for i := 0; i < 5; i++ {
			if err := d.ShareHypRange(0, rangeBase, hyp.MaxShareRange); err != nil {
				log.Fatal("range: ", err)
			}
			for p := uint64(0); p < hyp.MaxShareRange; p++ {
				if err := d.UnshareHyp(0, rangeBase+arch.PFN(p)); err != nil {
					log.Fatal("unshare: ", err)
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if err := d.ShareHyp(1, churn); err != nil {
				log.Fatal("churn: ", err)
			}
			if err := d.UnshareHyp(1, churn); err != nil {
				log.Fatal("churn: ", err)
			}
		}
	}()
	wg.Wait()
	st = rec.Stats()
	fmt.Printf("   oracle after interference: %d checks, %d passed, %d alarms\n",
		st.Checks, st.Passed, st.Failures)
	if st.Failures > 0 {
		log.Fatal("false alarm under cross-phase interference")
	}
	fmt.Println("   -> a monolithic whole-call comparison would have flagged CPU 1's changes;")
	fmt.Println("      the per-session check is interference-tolerant by construction")

	fmt.Println("\n3. and a genuine phase bug is still caught")
	if !detectBadStop() {
		log.Fatal("bug not detected")
	}
	fmt.Println("   share-range-bad-stop (reports success despite a failed phase): DETECTED")
}

func detectBadStop() bool {
	for _, r := range bugdemo.DetectAll() {
		if r.Demo.Bug == faults.BugShareRangeBadStop {
			return r.Detected
		}
	}
	return false
}
