// Quickstart: boot the simulated pKVM stack, attach the ghost
// specification oracle, perform one host_share_hyp, and print the
// paper-style abstract-state diff the oracle computed for it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

//ghostlint:ignore lockcheck single-threaded demo: no concurrent hypercall traffic, so reading abstractions without the component locks is sound
func main() {
	// Boot the hypervisor: Arm-A-style memory, host stage 2 with
	// mapping-on-demand, the hypervisor's own stage 1.
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Attach the executable specification. From here on, every trap
	// is recorded, specified, and checked.
	rec := ghost.Attach(hv)
	d := proxy.New(hv)

	// Snapshot the abstract state before the call (examples may read
	// it freely; inside the oracle this happens at the lock points).
	pre := ghost.NewState()
	pre.Host, _ = ghost.AbstractHost(hv)
	pre.Pkvm = ghost.AbstractHyp(hv)
	l := ghost.AbstractLocal(hv, 0)
	pre.Locals[0] = &l

	// The host shares one of its pages with the hypervisor.
	pfn, err := d.AllocPage()
	if err != nil {
		log.Fatal(err)
	}
	if err := d.ShareHyp(0, pfn); err != nil {
		log.Fatalf("host_share_hyp: %v", err)
	}

	post := ghost.NewState()
	post.Host, _ = ghost.AbstractHost(hv)
	post.Pkvm = ghost.AbstractHyp(hv)
	l2 := ghost.AbstractLocal(hv, 0)
	post.Locals[0] = &l2

	fmt.Println("recorded post ghost state diff from recorded pre:")
	fmt.Print(ghost.FormatStateDiff(pre, post))

	st := rec.Stats()
	fmt.Printf("\noracle: %d checks, %d passed, %d alarms\n", st.Checks, st.Passed, st.Failures)
	for _, f := range rec.Failures() {
		fmt.Println("  ", f)
	}
}
