// hostfault: mapping-on-demand and the loose host specification.
// Shows the host faulting in a 2MB block on first touch, the
// hypervisor splitting state on a share, and the key subtlety of the
// paper's §3.1: demand-mapped host-owned pages never appear in the
// deterministic ghost state — only the annotation and share mappings
// do, with legality of the rest checked by the abstraction function.
//
//	go run ./examples/hostfault
package main

import (
	"fmt"
	"log"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

//ghostlint:ignore lockcheck single-threaded demo: no concurrent hypercall traffic, so reading abstractions without the component locks is sound
func main() {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rec := ghost.Attach(hv)
	d := proxy.New(hv)

	pfn, _ := d.AllocPage()
	ipa := arch.IPA(pfn.Phys())

	fmt.Println("1. host stage 2 starts empty: first touch faults to EL2")
	if _, fault := arch.WalkRead(hv.Mem, hv.HostPGTRoot(), uint64(ipa)); fault == nil {
		log.Fatal("page unexpectedly mapped before first touch")
	}
	if ok, _ := d.Access(0, ipa, true); !ok {
		log.Fatal("demand fault failed")
	}
	host, _ := ghost.AbstractHost(hv)
	fmt.Printf("   after the fault: ghost host.shared = %v, host.annot pages = %d (carve-out only)\n",
		host.Shared, host.Annot.NrPages())
	fmt.Println("   -> the new mapping is invisible to the deterministic ghost state: loose by design")

	fmt.Println("\n2. the hypervisor mapped a whole 2MB block, not just the faulting page")
	res, fault := arch.WalkRead(hv.Mem, hv.HostPGTRoot(), uint64(ipa))
	if fault != nil {
		log.Fatal(fault)
	}
	fmt.Printf("   walk: %#x -> %#x at level %d (%s)\n", uint64(ipa), uint64(res.OutputAddr), res.Level, res.Attrs)
	neighbour := uint64(ipa) + 37*arch.PageSize
	if _, f := arch.WalkRead(hv.Mem, hv.HostPGTRoot(), neighbour); f != nil {
		log.Fatal("neighbour inside the block not mapped: ", f)
	}
	fmt.Printf("   neighbour %#x translates without another fault\n", neighbour)

	fmt.Println("\n3. sharing one page of the block forces a split; the share IS in the ghost state")
	if err := d.ShareHyp(0, pfn); err != nil {
		log.Fatal(err)
	}
	res, _ = arch.WalkRead(hv.Mem, hv.HostPGTRoot(), uint64(ipa))
	fmt.Printf("   walk now terminates at level %d (block split to pages)\n", res.Level)
	host, _ = ghost.AbstractHost(hv)
	fmt.Printf("   ghost host.shared = %v\n", host.Shared)

	fmt.Println("\n4. faults on memory the host does not own are reflected back")
	if ok, _ := d.Access(0, arch.IPA(hv.Globals().CarveStart), false); ok {
		log.Fatal("host reached the hypervisor carve-out")
	}
	fmt.Println("   access to the hypervisor carve-out: injected abort (host would take an exception)")

	fmt.Println("\n5. MMIO is demand-mapped too, as device memory, page by page")
	if ok, _ := d.Access(0, arch.IPA(hyp.UARTPhys), true); !ok {
		log.Fatal("MMIO fault failed")
	}
	res, _ = arch.WalkRead(hv.Mem, hv.HostPGTRoot(), uint64(hyp.UARTPhys))
	fmt.Printf("   UART: level %d mapping, %s\n", res.Level, res.Attrs)

	st := rec.Stats()
	fmt.Printf("\noracle: %d traps checked, %d passed, %d alarms\n", st.Traps, st.Passed, st.Failures)
	for _, f := range rec.Failures() {
		fmt.Println("  ", f)
	}
}
