// guestvm: a protected VM running an actual (interpreted) guest
// program rather than a scripted event queue — it computes Fibonacci
// numbers, writes them into its own memory, faults that memory in
// through the host on first touch, shares the page back as a result
// ring, and halts. The ghost oracle checks every trap along the way;
// everything the guest does privately at EL1 is, correctly, invisible
// to it.
//
//	go run ./examples/guestvm
package main

import (
	"fmt"
	"log"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

func main() {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rec := ghost.Attach(hv)
	rec.OnFailure = func(f ghost.Failure) { fmt.Println("ALARM:", f) }
	d := proxy.New(hv)

	// Boot the VM.
	h, _, err := d.InitVM(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.InitVCPU(0, h, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := d.Topup(0, h, 0, 6); err != nil {
		log.Fatal(err)
	}

	// The guest program: fib(10) into the ring at gfn 16, then share
	// the ring with the host and halt.
	//
	//   r1, r2 = 0, 1        (fib pair)
	//   r4 = 10; r5 = 0; r6 = 1   (loop counter, zero, one)
	//   loop: r3 = r1; r1 = r1+r2; r2 = r3  — via adds and moves
	//   store r1 -> [ring]; share ring; halt
	ring := uint64(16 << arch.PageShift)
	prog := []hyp.Insn{
		{Op: hyp.OpMovi, Dst: 1, Imm: 0},          // 0: fib a
		{Op: hyp.OpMovi, Dst: 2, Imm: 1},          // 1: fib b
		{Op: hyp.OpMovi, Dst: 4, Imm: 10},         // 2: counter
		{Op: hyp.OpMovi, Dst: 5, Imm: 0},          // 3: constant 0
		{Op: hyp.OpMovi, Dst: 6, Imm: ^uint64(0)}, // 4: constant -1
		// loop body (pc 5..9): a,b = b,a+b ; counter--
		{Op: hyp.OpMovi, Dst: 3, Imm: 0},        // 5: r3 = 0
		{Op: hyp.OpAdd, Dst: 3, Src: 1},         // 6: r3 = a
		{Op: hyp.OpAdd, Dst: 1, Src: 2},         // 7: a = a+b
		{Op: hyp.OpMovi, Dst: 2, Imm: 0},        // 8: b = 0
		{Op: hyp.OpAdd, Dst: 2, Src: 3},         // 9: b = old a
		{Op: hyp.OpAdd, Dst: 4, Src: 6},         // 10: counter--
		{Op: hyp.OpBne, Dst: 4, Src: 5, Imm: 5}, // 11: loop while counter != 0
		{Op: hyp.OpMovi, Dst: 7, Imm: ring},     // 12
		{Op: hyp.OpStore, Dst: 1, Src: 7},       // 13: ring[0] = fib (faults once)
		{Op: hyp.OpShareHost, Src: 7},           // 14: share the ring
		{Op: hyp.OpHalt},                        // 15
	}
	if !hv.LoadGuestProgram(h, 0, prog) {
		log.Fatal("program load failed")
	}
	if err := d.VCPULoad(0, h, 0); err != nil {
		log.Fatal(err)
	}

	// Host scheduler loop: run the guest, service its faults.
	var ringPFN arch.PFN
	for round := 0; ; round++ {
		if round > 64 {
			log.Fatal("guest never finished")
		}
		exit, err := d.VCPURun(0)
		if err != nil {
			log.Fatal(err)
		}
		if exit.Code == hyp.RunExitMemAbort {
			pfn, err := d.AllocPage()
			if err != nil {
				log.Fatal(err)
			}
			gfn := uint64(exit.IPA) >> arch.PageShift
			fmt.Printf("guest faulted at gfn %d -> host maps frame %#x\n", gfn, uint64(pfn))
			if err := d.MapGuest(0, pfn, gfn); err != nil {
				log.Fatal(err)
			}
			if gfn == 16 {
				ringPFN = pfn
			}
			continue
		}
		// A yield: did the guest share the ring yet?
		if e := hyp.ErrnoFromReg(hv.CPUs[0].GuestRegs[0]); e == hyp.OK && ringPFN != 0 {
			break
		}
	}

	// The host reads the result through its borrowed mapping.
	val, err := d.Read64(1, arch.IPA(ringPFN.Phys()))
	if err != nil {
		log.Fatal("host cannot read the shared ring: ", err)
	}
	fmt.Printf("guest computed fib(10) = %d (expected 55)\n", val)
	if val != 55 {
		log.Fatal("wrong answer")
	}

	st := rec.Stats()
	fmt.Printf("oracle: %d traps, %d checks, %d passed, %d alarms\n",
		st.Traps, st.Checks, st.Passed, st.Failures)
}
