module ghostspec

go 1.22
