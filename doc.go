// Package ghostspec is a reproduction of "Ghost in the Android Shell:
// Pragmatic Test-oracle Specification of a Production Hypervisor"
// (SOSP 2025): an executable, runtime-checkable functional-correctness
// specification for a pKVM-style hypervisor, together with the
// simulated Arm-A substrate it runs on, the hypervisor itself, test
// infrastructure (hyp-proxy driver, coverage, handwritten suite,
// model-guided random testing), and fault injection re-creating the
// paper's bugs.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate the paper's
// performance numbers (run `go test -bench=. -benchmem .`).
package ghostspec
